// PmlFramework: the paper's primary contribution.
//
// Offline stage (paper Fig. 3): benchmark the Table-I clusters, assemble
// the feature/label dataset, optionally select the top-K features by Gini
// importance, and train one Random Forest per collective. The trained
// bundle serializes to JSON — the "pre-trained model shipped along with
// the MPI library".
//
// Online stage (paper Fig. 4): for a new cluster, if a tuning table is
// already cached, use it; otherwise extract the cluster's features, run a
// single inference sweep (one process, sub-second), and emit a JSON tuning
// table for use at application runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "coll/collective.hpp"
#include "common/artifact.hpp"
#include "common/json.hpp"
#include "core/dataset_builder.hpp"
#include "core/selectors.hpp"
#include "core/tuning_table.hpp"
#include "ml/forest.hpp"
#include "obs/obs.hpp"

namespace pml::core {

struct TrainOptions {
  BuildOptions build;             ///< dataset sweep parameters
  /// Per-collective model parameters; the defaults follow what the Table-II
  /// grid search selects on the full dataset.
  ml::RandomForestParams forest{.n_trees = 100, .max_features = 6};
  /// Keep only the K most important features (paper: "top 5 features are
  /// selected ... to avoid overfitting"); -1 keeps all 14.
  int top_features = -1;
  std::uint64_t seed = 13;
  /// Threads for training (per-collective dataset builds + forest fits) and
  /// for compile_for sweeps of the resulting framework; <= 0 = all hardware
  /// threads, 1 = serial. RNG streams are pre-split sequentially, so the
  /// trained bundle is bit-identical at any thread count.
  int threads = 0;
  /// Collectives to train models for. Defaults to the paper's pair;
  /// include kAllreduce/kBcast to enable the future-work extensions.
  std::vector<coll::Collective> collectives = coll::paper_collectives();
  /// Trace/metrics output for the training run; empty = no capture.
  obs::Sink trace_sink{};
};

/// Options for the online stage (compile_for / compile_or_cached). One
/// struct replaces the previous positional span-triple signature; field
/// defaults are documented centrally in docs/API.md.
struct CompileOptions {
  /// Sweep grids. Empty vectors fall back to the target cluster's own
  /// benchmarked grid (ClusterSpec::node_counts / ppn_values /
  /// message_sizes; a cluster without listed sizes gets the paper's
  /// 2^0..2^20 sweep). Entries must be >= 1 (validate()).
  std::vector<int> node_counts;
  std::vector<int> ppn_values;
  std::vector<std::uint64_t> message_sizes;
  /// Threads for the inference sweep; 0 = inherit the framework's
  /// threads() knob, < 0 = all hardware threads, 1 = serial.
  int threads = 0;
  /// Directory for the filesystem-cached compile_or_cached overload:
  /// tables persist as <cache_dir>/<cluster>.table.json. Empty = cwd.
  std::string cache_dir;
  /// Trace/metrics output for this compile; empty = no capture.
  obs::Sink trace_sink{};
  /// Retry schedule for transient cache-read failures in the filesystem
  /// compile_or_cached overload. The default retries twice with 1 ms
  /// bounded-exponential backoff; tests inject a counting sleep.
  RetryPolicy cache_retry{};
  /// Degradation ladder switch: when true (default), a compile failure in
  /// compile_or_cached/online_table falls back to HeuristicSelector instead
  /// of throwing. Disable to surface errors in strict deployments.
  bool heuristic_fallback = true;
  /// Collectives the online stage must be able to answer. The compiled
  /// table covers the model's trained collectives; under heuristic_fallback
  /// any collective listed here that the model lacks is topped up with
  /// heuristic entries instead (partial degradation,
  /// `online.fallback.partial`). Defaults to the paper's pair, so a model
  /// trained with default TrainOptions round-trips verbatim.
  std::vector<coll::Collective> collectives = coll::paper_collectives();

  /// Throws pml::ConfigError on non-positive node/ppn entries.
  void validate() const;

  /// Convenience factory for the common explicit-grid case.
  static CompileOptions sweep(std::vector<int> node_counts,
                              std::vector<int> ppn_values,
                              std::vector<std::uint64_t> message_sizes) {
    CompileOptions options;
    options.node_counts = std::move(node_counts);
    options.ppn_values = std::move(ppn_values);
    options.message_sizes = std::move(message_sizes);
    return options;
  }
};

// Thread-safety contract: once constructed (train/load), a PmlFramework is
// immutable apart from two knobs — the threads_ setting and the
// inference_seconds_ timing, the latter an atomic. select(), compile_for()
// and the compile_or_cached overload that takes a caller-owned cache are
// therefore safe to call concurrently from any number of threads on one
// instance (each caller must own its `cache` argument); the trained parts_
// map is only ever read after construction and all select() scratch is
// thread_local. Do not call set_threads() or move/assign the framework
// concurrently with queries.
class PmlFramework final : public Selector {
 public:
  /// Trained model plus the feature columns it consumes (public so the
  /// training helpers and tests can assemble/inspect bundles).
  struct PerCollective {
    ml::RandomForest forest;
    std::vector<std::size_t> columns;  ///< feature columns the model sees
  };

  PmlFramework() = default;
  // Copies/moves exist for factory returns (train/load) and for tests
  // that clone a shared fixture; they are not synchronised — never copy
  // or move a framework that other threads are querying. Spelled out
  // because the atomic member suppresses the implicit ones.
  PmlFramework(const PmlFramework& other)
      : parts_(other.parts_),
        inference_seconds_(other.inference_seconds_.load()),
        threads_(other.threads_) {}
  PmlFramework& operator=(const PmlFramework& other) {
    parts_ = other.parts_;
    inference_seconds_.store(other.inference_seconds_.load());
    threads_ = other.threads_;
    return *this;
  }
  PmlFramework(PmlFramework&& other) noexcept
      : parts_(std::move(other.parts_)),
        inference_seconds_(other.inference_seconds_.load()),
        threads_(other.threads_) {}
  PmlFramework& operator=(PmlFramework&& other) noexcept {
    parts_ = std::move(other.parts_);
    inference_seconds_.store(other.inference_seconds_.load());
    threads_ = other.threads_;
    return *this;
  }

  /// Offline training on a list of clusters (exclude the evaluation
  /// cluster to reproduce the paper's leave-cluster-out protocol).
  static PmlFramework train(std::span<const sim::ClusterSpec> clusters,
                            const TrainOptions& options = {});

  /// Offline training on pre-built records (lets callers filter rows, e.g.
  /// the node-based split of paper §VII-D).
  static PmlFramework train_on_records(
      std::span<const TuningRecord> allgather_records,
      std::span<const TuningRecord> alltoall_records,
      const TrainOptions& options = {});

  // --- Selector interface: direct single-point inference -------------------
  // The model's classes index coll::selection_space(collective): a bundle
  // trained on the v1 flat label space covers the space's flat prefix and
  // keeps working unchanged; a label-space-v2 bundle ranks hierarchical
  // selections too.
  std::string name() const override { return "PML-MPI"; }
  coll::Selection select(coll::Collective collective,
                         const sim::ClusterSpec& cluster, sim::Topology topo,
                         std::uint64_t msg_bytes) override;

  /// One query of a batched selection: a topology and message size against
  /// one (collective, cluster).
  struct SelectQuery {
    sim::Topology topo;
    std::uint64_t msg_bytes = 0;
  };

  /// Batched select(): assembles every query's feature row into a reused
  /// thread_local Matrix, runs one FlatForest predict_batch (the tree-major
  /// blocked kernel), and ranks each row with the same tie-breaking as
  /// select() — so out[i] is exactly what select() would return for
  /// queries[i], with zero steady-state allocations. Thread-safe under the
  /// same contract as select().
  void select_batch(coll::Collective collective,
                    const sim::ClusterSpec& cluster,
                    std::span<const SelectQuery> queries,
                    std::span<coll::Selection> out);

  /// Selector::select_many through select_batch (fixed topology, varying
  /// message size) — the tuning-table compile hot path.
  void select_many(coll::Collective collective,
                   const sim::ClusterSpec& cluster, sim::Topology topo,
                   std::span<const std::uint64_t> msg_sizes,
                   std::span<coll::Selection> out) override;

  // --- Online stage (Fig. 4) ------------------------------------------------

  /// Generate the tuning table for a (possibly never-seen) cluster by
  /// running inference over options' sweep grid (empty grids fall back to
  /// the cluster's own). Updates inference_seconds().
  TuningTable compile_for(const sim::ClusterSpec& cluster,
                          const CompileOptions& options = {});

  /// Fig. 4 top box: reuse `cache` if it already covers this cluster and
  /// sweep, otherwise compile a fresh table (and replace `cache`).
  const TuningTable& compile_or_cached(const sim::ClusterSpec& cluster,
                                       const CompileOptions& options,
                                       TuningTable& cache);

  /// Filesystem-cached variant: loads <cache_dir>/<cluster>.table.json if
  /// it covers this cluster and sweep, otherwise compiles and writes it.
  TuningTable compile_or_cached(const sim::ClusterSpec& cluster,
                                const CompileOptions& options = {});

  /// Transitional overloads for the pre-CompileOptions positional
  /// signatures; forwarded. Removed after one release.
  [[deprecated("pass core::CompileOptions instead of positional spans")]]
  TuningTable compile_for(const sim::ClusterSpec& cluster,
                          std::span<const int> node_counts,
                          std::span<const int> ppn_values,
                          std::span<const std::uint64_t> msg_sizes);
  [[deprecated("pass core::CompileOptions instead of positional spans")]]
  const TuningTable& compile_or_cached(const sim::ClusterSpec& cluster,
                                       std::span<const int> node_counts,
                                       std::span<const int> ppn_values,
                                       std::span<const std::uint64_t> msg_sizes,
                                       TuningTable& cache);

  /// Wall-clock seconds of the most recent compile_for call on any thread
  /// (the paper's "less than a second of model inference overhead"). With
  /// concurrent compiles this is a last-writer-wins convenience for the
  /// CLI; per-compile timing travels on TuningTable::compile_seconds().
  double inference_seconds() const noexcept {
    return inference_seconds_.load(std::memory_order_relaxed);
  }

  /// Threads used by compile_for sweeps; <= 0 = all hardware threads.
  /// Inherited from TrainOptions::threads at train time, default for
  /// loaded bundles.
  void set_threads(int threads) noexcept { threads_ = threads; }
  int threads() const noexcept { return threads_; }

  // --- Introspection ---------------------------------------------------------

  const ml::RandomForest& model(coll::Collective collective) const;

  /// Gini importances expanded to the full 14-column layout (zero for
  /// columns dropped by feature selection).
  std::vector<double> full_feature_importances(
      coll::Collective collective) const;

  const std::vector<std::size_t>& selected_columns(
      coll::Collective collective) const;

  // --- Serialization ---------------------------------------------------------

  Json to_json() const;
  static PmlFramework load(const Json& j);

  /// Load a model bundle from disk. Accepts both a pml-artifact-v1
  /// envelope of kind "model" (checksum validated) and a legacy bare
  /// bundle. Throws IoError / JsonError / TuningError on failure.
  static PmlFramework load_file(const std::string& path);

 private:
  const PerCollective& part(coll::Collective collective) const;

  /// Read-only after construction (the thread-safety contract above).
  std::map<coll::Collective, PerCollective> parts_;
  /// Written by every compile_for; atomic so concurrent compiles on one
  /// framework race benignly (last writer wins) instead of being UB.
  std::atomic<double> inference_seconds_{0.0};
  int threads_ = 0;
};

/// Resolve a CompileOptions sweep against a target cluster: empty grid
/// axes are replaced by the cluster's own benchmarked grid (a cluster
/// without listed sizes gets the paper's 2^0..2^20 sweep), exactly as
/// compile_for does internally. Cache layers use this to compute the
/// effective sweep — and hence the cache key — before compiling. Throws
/// ConfigError on invalid grids (validate()).
CompileOptions resolve_compile_sweep(const sim::ClusterSpec& cluster,
                                     const CompileOptions& options);

// --- Graceful degradation (online stage) -------------------------------------
//
// The online stage must always hand the application a usable tuning table:
// a corrupt cache, a missing model, or a failing disk degrades selection
// quality, never availability. The fallback ladder is
//   cached table -> recompile from model -> HeuristicSelector table,
// with each step down recorded as an online.fallback.* metric and a
// structured warning on stderr (docs/API.md, "Fault injection &
// degradation policy").

/// Rule-of-thumb tuning table from HeuristicSelector over the options'
/// sweep grid — no model required; cannot fail on IO. Covers every
/// collective in coll::all_collectives() by default; pass `collectives`
/// to build jobs for a subset (the partial-degradation ladder uses this
/// to top up only what the model is missing).
TuningTable heuristic_table(const sim::ClusterSpec& cluster,
                            const CompileOptions& options = {},
                            std::span<const coll::Collective> collectives = {});

/// One-call online stage: load the model bundle at `model_path` and run the
/// filesystem-cached compile. Any Error along the way (unreadable or
/// corrupt model, compile failure) degrades to heuristic_table() when
/// options.heuristic_fallback is set, so this always returns a usable
/// table.
TuningTable online_table(const std::string& model_path,
                         const sim::ClusterSpec& cluster,
                         const CompileOptions& options = {});

}  // namespace pml::core
