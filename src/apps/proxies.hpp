// Communication-skeleton proxy applications (paper §VI-B / Fig. 13).
//
// The paper evaluates end-to-end speedup on Gromacs (BenchMEM) and MiniFE.
// We reproduce both as communication skeletons: the per-step collective
// mix, message sizing, and compute-to-communication ratio follow the real
// applications, while the collective costs come from the cluster model and
// the algorithm choice comes from a pluggable Selector — which is exactly
// the quantity under test (a better selector shrinks step time).
//
//  - gromacs_proxy: molecular dynamics with PME long-range electrostatics.
//    Each MD step performs the 3D-FFT transposes (MPI_Alltoall with
//    blocks of grid_bytes / p^2) four times (forward + inverse, two
//    transpose stages) and gathers per-rank energies (small
//    MPI_Allgather). Strong scaling loses efficiency past ~224 processes
//    as the paper observes, because the alltoall term stops shrinking.
//
//  - minife_proxy: an unstructured implicit finite-element CG solve.
//    Each iteration performs a 27-point-stencil SpMV (compute) and two
//    global dot products realised as tiny MPI_Allgather operations, plus a
//    boundary-exchange allgather every 10 iterations.
#pragma once

#include <cstdint>
#include <string>

#include "core/selectors.hpp"
#include "sim/hardware.hpp"
#include "sim/network.hpp"

namespace pml::apps {

/// Timing breakdown of one proxy run.
struct ProxyResult {
  double total_seconds = 0.0;
  double compute_seconds = 0.0;
  double allgather_seconds = 0.0;
  double alltoall_seconds = 0.0;
  int steps = 0;
};

struct GromacsConfig {
  int steps = 100;
  int fft_grid = 96;          ///< PME grid points per dimension
  double atoms = 82000.0;     ///< BenchMEM system size
};

struct MiniFeConfig {
  int cg_iterations = 200;
  int grid = 200;             ///< nx = ny = nz elements
  int boundary_every = 10;    ///< iterations between boundary allgathers
};

/// Run the Gromacs/BenchMEM skeleton with `selector` choosing every
/// collective algorithm. Deterministic; uses the analytic collective costs.
ProxyResult run_gromacs_proxy(const sim::ClusterSpec& cluster,
                              sim::Topology topo, core::Selector& selector,
                              const GromacsConfig& config = {});

/// Run the MiniFE CG skeleton.
ProxyResult run_minife_proxy(const sim::ClusterSpec& cluster,
                             sim::Topology topo, core::Selector& selector,
                             const MiniFeConfig& config = {});

}  // namespace pml::apps
