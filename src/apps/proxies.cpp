#include "apps/proxies.hpp"

#include <algorithm>
#include <cmath>

#include "coll/cost.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace pml::apps {

namespace {

using coll::Collective;

/// Seconds of local compute for `flops` on one rank of the cluster
/// (vectorised estimate: 4 double-precision lanes per cycle).
double compute_seconds(const sim::ClusterSpec& cluster, double flops) {
  return flops / (cluster.hw.cpu_max_clock_ghz * 4.0e9);
}

/// Cost of one collective with the selector's chosen algorithm.
double collective_seconds(const sim::NetworkModel& model,
                          core::Selector& selector,
                          const sim::ClusterSpec& cluster, sim::Topology topo,
                          Collective collective, std::uint64_t msg_bytes) {
  if (obs::enabled()) {
    static obs::Counter invoked("app.collectives_invoked");
    invoked.increment();
  }
  const coll::Selection s =
      selector.select(collective, cluster, topo, msg_bytes);
  return s.hierarchical()
             ? coll::analytic_cost(cluster, topo, s, msg_bytes)
             : coll::analytic_cost(model, s.algorithm, msg_bytes);
}

}  // namespace

ProxyResult run_gromacs_proxy(const sim::ClusterSpec& cluster,
                              sim::Topology topo, core::Selector& selector,
                              const GromacsConfig& config) {
  if (config.steps < 1 || config.fft_grid < 8) {
    throw TuningError("gromacs proxy: invalid configuration");
  }
  obs::Span span("app.gromacs_proxy");
  const sim::NetworkModel model(cluster, topo);
  const int p = topo.world_size();

  // Short-range nonbonded + PME charge spreading: ~30k flops per atom per
  // step (neighbour-list interactions), divided across ranks.
  const double step_flops = 30000.0 * config.atoms / p;

  // PME 3D FFT: complex doubles on an N^3 grid. Per MD step the proxy
  // performs the two pencil transposes of the forward and inverse FFTs
  // (blocks of grid_bytes / p^2) and one charge-grid redistribution with a
  // coarser decomposition (blocks of grid_bytes / (16 p)), matching the
  // spread of alltoall sizes a PME step really issues.
  const double grid_points = std::pow(static_cast<double>(config.fft_grid), 3);
  const auto grid_bytes = static_cast<std::uint64_t>(grid_points * 16.0);
  const auto fft_block = std::max<std::uint64_t>(
      1, grid_bytes / (static_cast<std::uint64_t>(p) *
                       static_cast<std::uint64_t>(p)));
  const auto spread_block = std::max<std::uint64_t>(
      1, grid_bytes / (16 * static_cast<std::uint64_t>(p)));
  constexpr int kTransposesPerStep = 4;  // fwd + inv, two stages each

  // Per-step energy/virial reduction: 64 B per rank gathered everywhere.
  constexpr std::uint64_t kEnergyBytes = 64;

  ProxyResult result;
  result.steps = config.steps;
  const double t_comp = compute_seconds(cluster, step_flops);
  // The selector is consulted on every invocation (stochastic selectors
  // re-roll per call, exactly as they would inside the MPI library).
  for (int step = 0; step < config.steps; ++step) {
    result.compute_seconds += t_comp;
    for (int t = 0; t < kTransposesPerStep; ++t) {
      result.alltoall_seconds += collective_seconds(
          model, selector, cluster, topo, Collective::kAlltoall, fft_block);
    }
    result.alltoall_seconds += collective_seconds(
        model, selector, cluster, topo, Collective::kAlltoall, spread_block);
    result.allgather_seconds += collective_seconds(
        model, selector, cluster, topo, Collective::kAllgather, kEnergyBytes);
  }
  result.total_seconds = result.compute_seconds + result.alltoall_seconds +
                         result.allgather_seconds;
  return result;
}

ProxyResult run_minife_proxy(const sim::ClusterSpec& cluster,
                             sim::Topology topo, core::Selector& selector,
                             const MiniFeConfig& config) {
  if (config.cg_iterations < 1 || config.grid < 8) {
    throw TuningError("minife proxy: invalid configuration");
  }
  obs::Span span("app.minife_proxy");
  const sim::NetworkModel model(cluster, topo);
  const int p = topo.world_size();

  // 27-point stencil SpMV: 2 flops per nonzero, 27 nonzeros per row;
  // sparse access patterns run far below peak, so derate by ~8x.
  const double rows = std::pow(static_cast<double>(config.grid), 3);
  const double spmv_flops = 8.0 * 2.0 * 27.0 * rows / p;
  // Vector updates (axpy x3) add ~6 flops per row.
  const double axpy_flops = 8.0 * 6.0 * rows / p;

  // Two dot products per iteration: partial sums (8 B) gathered globally.
  constexpr std::uint64_t kDotBytes = 8;
  // Boundary/external-DOF exchange: each rank contributes one subdomain
  // face of doubles.
  const double face_rows = std::pow(rows / p, 2.0 / 3.0);
  const auto boundary_bytes =
      std::max<std::uint64_t>(8, static_cast<std::uint64_t>(face_rows * 8.0));

  ProxyResult result;
  result.steps = config.cg_iterations;
  const double t_comp = compute_seconds(cluster, spmv_flops + axpy_flops);
  for (int it = 0; it < config.cg_iterations; ++it) {
    result.compute_seconds += t_comp;
    for (int d = 0; d < 2; ++d) {
      result.allgather_seconds += collective_seconds(
          model, selector, cluster, topo, Collective::kAllgather, kDotBytes);
    }
    if ((it + 1) % config.boundary_every == 0) {
      result.allgather_seconds +=
          collective_seconds(model, selector, cluster, topo,
                             Collective::kAllgather, boundary_bytes);
    }
  }
  result.alltoall_seconds = 0.0;
  result.total_seconds = result.compute_seconds + result.allgather_seconds;
  return result;
}

}  // namespace pml::apps
