# Empty dependencies file for pml_core.
# This may be replaced when dependencies are built.
