
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dataset_builder.cpp" "src/core/CMakeFiles/pml_core.dir/dataset_builder.cpp.o" "gcc" "src/core/CMakeFiles/pml_core.dir/dataset_builder.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/pml_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/pml_core.dir/features.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/pml_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/pml_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/overhead.cpp" "src/core/CMakeFiles/pml_core.dir/overhead.cpp.o" "gcc" "src/core/CMakeFiles/pml_core.dir/overhead.cpp.o.d"
  "/root/repo/src/core/selectors.cpp" "src/core/CMakeFiles/pml_core.dir/selectors.cpp.o" "gcc" "src/core/CMakeFiles/pml_core.dir/selectors.cpp.o.d"
  "/root/repo/src/core/tuning_table.cpp" "src/core/CMakeFiles/pml_core.dir/tuning_table.cpp.o" "gcc" "src/core/CMakeFiles/pml_core.dir/tuning_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/coll/CMakeFiles/pml_coll.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ml/CMakeFiles/pml_ml.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/pml_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/pml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
