file(REMOVE_RECURSE
  "CMakeFiles/pml_core.dir/dataset_builder.cpp.o"
  "CMakeFiles/pml_core.dir/dataset_builder.cpp.o.d"
  "CMakeFiles/pml_core.dir/features.cpp.o"
  "CMakeFiles/pml_core.dir/features.cpp.o.d"
  "CMakeFiles/pml_core.dir/framework.cpp.o"
  "CMakeFiles/pml_core.dir/framework.cpp.o.d"
  "CMakeFiles/pml_core.dir/overhead.cpp.o"
  "CMakeFiles/pml_core.dir/overhead.cpp.o.d"
  "CMakeFiles/pml_core.dir/selectors.cpp.o"
  "CMakeFiles/pml_core.dir/selectors.cpp.o.d"
  "CMakeFiles/pml_core.dir/tuning_table.cpp.o"
  "CMakeFiles/pml_core.dir/tuning_table.cpp.o.d"
  "libpml_core.a"
  "libpml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
