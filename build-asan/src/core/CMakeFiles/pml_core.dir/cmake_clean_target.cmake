file(REMOVE_RECURSE
  "libpml_core.a"
)
