file(REMOVE_RECURSE
  "CMakeFiles/pml_common.dir/json.cpp.o"
  "CMakeFiles/pml_common.dir/json.cpp.o.d"
  "CMakeFiles/pml_common.dir/parallel.cpp.o"
  "CMakeFiles/pml_common.dir/parallel.cpp.o.d"
  "CMakeFiles/pml_common.dir/strings.cpp.o"
  "CMakeFiles/pml_common.dir/strings.cpp.o.d"
  "CMakeFiles/pml_common.dir/table.cpp.o"
  "CMakeFiles/pml_common.dir/table.cpp.o.d"
  "libpml_common.a"
  "libpml_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pml_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
