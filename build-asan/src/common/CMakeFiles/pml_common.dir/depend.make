# Empty dependencies file for pml_common.
# This may be replaced when dependencies are built.
