file(REMOVE_RECURSE
  "libpml_common.a"
)
