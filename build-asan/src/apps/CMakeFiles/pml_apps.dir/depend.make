# Empty dependencies file for pml_apps.
# This may be replaced when dependencies are built.
