file(REMOVE_RECURSE
  "CMakeFiles/pml_apps.dir/proxies.cpp.o"
  "CMakeFiles/pml_apps.dir/proxies.cpp.o.d"
  "libpml_apps.a"
  "libpml_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pml_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
