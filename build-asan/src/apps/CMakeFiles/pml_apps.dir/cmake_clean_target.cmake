file(REMOVE_RECURSE
  "libpml_apps.a"
)
