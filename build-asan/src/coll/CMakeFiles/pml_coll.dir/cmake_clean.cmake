file(REMOVE_RECURSE
  "CMakeFiles/pml_coll.dir/allgather.cpp.o"
  "CMakeFiles/pml_coll.dir/allgather.cpp.o.d"
  "CMakeFiles/pml_coll.dir/allreduce.cpp.o"
  "CMakeFiles/pml_coll.dir/allreduce.cpp.o.d"
  "CMakeFiles/pml_coll.dir/alltoall.cpp.o"
  "CMakeFiles/pml_coll.dir/alltoall.cpp.o.d"
  "CMakeFiles/pml_coll.dir/bcast.cpp.o"
  "CMakeFiles/pml_coll.dir/bcast.cpp.o.d"
  "CMakeFiles/pml_coll.dir/collective.cpp.o"
  "CMakeFiles/pml_coll.dir/collective.cpp.o.d"
  "CMakeFiles/pml_coll.dir/cost.cpp.o"
  "CMakeFiles/pml_coll.dir/cost.cpp.o.d"
  "CMakeFiles/pml_coll.dir/runner.cpp.o"
  "CMakeFiles/pml_coll.dir/runner.cpp.o.d"
  "libpml_coll.a"
  "libpml_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pml_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
