# Empty dependencies file for pml_coll.
# This may be replaced when dependencies are built.
