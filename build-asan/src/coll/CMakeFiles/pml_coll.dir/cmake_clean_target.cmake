file(REMOVE_RECURSE
  "libpml_coll.a"
)
