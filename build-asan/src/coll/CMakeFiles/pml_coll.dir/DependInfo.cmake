
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/allgather.cpp" "src/coll/CMakeFiles/pml_coll.dir/allgather.cpp.o" "gcc" "src/coll/CMakeFiles/pml_coll.dir/allgather.cpp.o.d"
  "/root/repo/src/coll/allreduce.cpp" "src/coll/CMakeFiles/pml_coll.dir/allreduce.cpp.o" "gcc" "src/coll/CMakeFiles/pml_coll.dir/allreduce.cpp.o.d"
  "/root/repo/src/coll/alltoall.cpp" "src/coll/CMakeFiles/pml_coll.dir/alltoall.cpp.o" "gcc" "src/coll/CMakeFiles/pml_coll.dir/alltoall.cpp.o.d"
  "/root/repo/src/coll/bcast.cpp" "src/coll/CMakeFiles/pml_coll.dir/bcast.cpp.o" "gcc" "src/coll/CMakeFiles/pml_coll.dir/bcast.cpp.o.d"
  "/root/repo/src/coll/collective.cpp" "src/coll/CMakeFiles/pml_coll.dir/collective.cpp.o" "gcc" "src/coll/CMakeFiles/pml_coll.dir/collective.cpp.o.d"
  "/root/repo/src/coll/cost.cpp" "src/coll/CMakeFiles/pml_coll.dir/cost.cpp.o" "gcc" "src/coll/CMakeFiles/pml_coll.dir/cost.cpp.o.d"
  "/root/repo/src/coll/runner.cpp" "src/coll/CMakeFiles/pml_coll.dir/runner.cpp.o" "gcc" "src/coll/CMakeFiles/pml_coll.dir/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/pml_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/pml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
