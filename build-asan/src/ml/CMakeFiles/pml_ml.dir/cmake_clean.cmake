file(REMOVE_RECURSE
  "CMakeFiles/pml_ml.dir/boosting.cpp.o"
  "CMakeFiles/pml_ml.dir/boosting.cpp.o.d"
  "CMakeFiles/pml_ml.dir/cv.cpp.o"
  "CMakeFiles/pml_ml.dir/cv.cpp.o.d"
  "CMakeFiles/pml_ml.dir/dataset.cpp.o"
  "CMakeFiles/pml_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/pml_ml.dir/factory.cpp.o"
  "CMakeFiles/pml_ml.dir/factory.cpp.o.d"
  "CMakeFiles/pml_ml.dir/forest.cpp.o"
  "CMakeFiles/pml_ml.dir/forest.cpp.o.d"
  "CMakeFiles/pml_ml.dir/knn.cpp.o"
  "CMakeFiles/pml_ml.dir/knn.cpp.o.d"
  "CMakeFiles/pml_ml.dir/metrics.cpp.o"
  "CMakeFiles/pml_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/pml_ml.dir/svm.cpp.o"
  "CMakeFiles/pml_ml.dir/svm.cpp.o.d"
  "CMakeFiles/pml_ml.dir/tree.cpp.o"
  "CMakeFiles/pml_ml.dir/tree.cpp.o.d"
  "libpml_ml.a"
  "libpml_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pml_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
