
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/boosting.cpp" "src/ml/CMakeFiles/pml_ml.dir/boosting.cpp.o" "gcc" "src/ml/CMakeFiles/pml_ml.dir/boosting.cpp.o.d"
  "/root/repo/src/ml/cv.cpp" "src/ml/CMakeFiles/pml_ml.dir/cv.cpp.o" "gcc" "src/ml/CMakeFiles/pml_ml.dir/cv.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/pml_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/pml_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/factory.cpp" "src/ml/CMakeFiles/pml_ml.dir/factory.cpp.o" "gcc" "src/ml/CMakeFiles/pml_ml.dir/factory.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/pml_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/pml_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/pml_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/pml_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/pml_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/pml_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/pml_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/pml_ml.dir/svm.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/pml_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/pml_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/pml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
