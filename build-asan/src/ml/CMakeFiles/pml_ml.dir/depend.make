# Empty dependencies file for pml_ml.
# This may be replaced when dependencies are built.
