file(REMOVE_RECURSE
  "libpml_ml.a"
)
