# Empty dependencies file for pml_sim.
# This may be replaced when dependencies are built.
