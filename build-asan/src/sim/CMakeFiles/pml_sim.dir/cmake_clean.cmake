file(REMOVE_RECURSE
  "CMakeFiles/pml_sim.dir/comm.cpp.o"
  "CMakeFiles/pml_sim.dir/comm.cpp.o.d"
  "CMakeFiles/pml_sim.dir/engine.cpp.o"
  "CMakeFiles/pml_sim.dir/engine.cpp.o.d"
  "CMakeFiles/pml_sim.dir/hardware.cpp.o"
  "CMakeFiles/pml_sim.dir/hardware.cpp.o.d"
  "CMakeFiles/pml_sim.dir/network.cpp.o"
  "CMakeFiles/pml_sim.dir/network.cpp.o.d"
  "libpml_sim.a"
  "libpml_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pml_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
