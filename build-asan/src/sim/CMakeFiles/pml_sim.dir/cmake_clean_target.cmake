file(REMOVE_RECURSE
  "libpml_sim.a"
)
