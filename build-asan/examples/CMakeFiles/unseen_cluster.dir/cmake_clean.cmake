file(REMOVE_RECURSE
  "CMakeFiles/unseen_cluster.dir/unseen_cluster.cpp.o"
  "CMakeFiles/unseen_cluster.dir/unseen_cluster.cpp.o.d"
  "unseen_cluster"
  "unseen_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unseen_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
