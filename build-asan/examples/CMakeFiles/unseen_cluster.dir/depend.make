# Empty dependencies file for unseen_cluster.
# This may be replaced when dependencies are built.
