file(REMOVE_RECURSE
  "CMakeFiles/application_speedup.dir/application_speedup.cpp.o"
  "CMakeFiles/application_speedup.dir/application_speedup.cpp.o.d"
  "application_speedup"
  "application_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/application_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
