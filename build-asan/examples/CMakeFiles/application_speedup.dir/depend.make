# Empty dependencies file for application_speedup.
# This may be replaced when dependencies are built.
