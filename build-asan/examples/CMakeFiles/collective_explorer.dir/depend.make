# Empty dependencies file for collective_explorer.
# This may be replaced when dependencies are built.
