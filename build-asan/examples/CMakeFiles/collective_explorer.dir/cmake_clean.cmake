file(REMOVE_RECURSE
  "CMakeFiles/collective_explorer.dir/collective_explorer.cpp.o"
  "CMakeFiles/collective_explorer.dir/collective_explorer.cpp.o.d"
  "collective_explorer"
  "collective_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
