file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/dataset_builder_test.cpp.o"
  "CMakeFiles/test_core.dir/core/dataset_builder_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/features_test.cpp.o"
  "CMakeFiles/test_core.dir/core/features_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/framework_test.cpp.o"
  "CMakeFiles/test_core.dir/core/framework_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/overhead_test.cpp.o"
  "CMakeFiles/test_core.dir/core/overhead_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/selectors_test.cpp.o"
  "CMakeFiles/test_core.dir/core/selectors_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/tuning_table_test.cpp.o"
  "CMakeFiles/test_core.dir/core/tuning_table_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
