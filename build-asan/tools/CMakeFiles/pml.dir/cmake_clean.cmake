file(REMOVE_RECURSE
  "CMakeFiles/pml.dir/pml_tool.cpp.o"
  "CMakeFiles/pml.dir/pml_tool.cpp.o.d"
  "pml"
  "pml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
