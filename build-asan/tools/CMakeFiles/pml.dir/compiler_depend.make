# Empty compiler generated dependencies file for pml.
# This may be replaced when dependencies are built.
