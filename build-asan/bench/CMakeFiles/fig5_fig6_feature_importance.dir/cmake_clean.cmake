file(REMOVE_RECURSE
  "CMakeFiles/fig5_fig6_feature_importance.dir/fig5_fig6_feature_importance.cpp.o"
  "CMakeFiles/fig5_fig6_feature_importance.dir/fig5_fig6_feature_importance.cpp.o.d"
  "fig5_fig6_feature_importance"
  "fig5_fig6_feature_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fig6_feature_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
