# Empty compiler generated dependencies file for fig5_fig6_feature_importance.
# This may be replaced when dependencies are built.
