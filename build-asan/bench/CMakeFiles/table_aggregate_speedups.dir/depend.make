# Empty dependencies file for table_aggregate_speedups.
# This may be replaced when dependencies are built.
