file(REMOVE_RECURSE
  "CMakeFiles/table_aggregate_speedups.dir/table_aggregate_speedups.cpp.o"
  "CMakeFiles/table_aggregate_speedups.dir/table_aggregate_speedups.cpp.o.d"
  "table_aggregate_speedups"
  "table_aggregate_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_aggregate_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
