# Empty compiler generated dependencies file for table3_split_accuracy.
# This may be replaced when dependencies are built.
