file(REMOVE_RECURSE
  "CMakeFiles/table3_split_accuracy.dir/table3_split_accuracy.cpp.o"
  "CMakeFiles/table3_split_accuracy.dir/table3_split_accuracy.cpp.o.d"
  "table3_split_accuracy"
  "table3_split_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_split_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
