# Empty dependencies file for table2_model_comparison.
# This may be replaced when dependencies are built.
