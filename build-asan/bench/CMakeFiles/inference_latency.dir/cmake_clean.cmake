file(REMOVE_RECURSE
  "CMakeFiles/inference_latency.dir/inference_latency.cpp.o"
  "CMakeFiles/inference_latency.dir/inference_latency.cpp.o.d"
  "inference_latency"
  "inference_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
