# Empty compiler generated dependencies file for inference_latency.
# This may be replaced when dependencies are built.
