file(REMOVE_RECURSE
  "CMakeFiles/fig8_vs_random.dir/fig8_vs_random.cpp.o"
  "CMakeFiles/fig8_vs_random.dir/fig8_vs_random.cpp.o.d"
  "fig8_vs_random"
  "fig8_vs_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_vs_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
