# Empty dependencies file for fig8_vs_random.
# This may be replaced when dependencies are built.
