file(REMOVE_RECURSE
  "CMakeFiles/fig13_applications.dir/fig13_applications.cpp.o"
  "CMakeFiles/fig13_applications.dir/fig13_applications.cpp.o.d"
  "fig13_applications"
  "fig13_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
