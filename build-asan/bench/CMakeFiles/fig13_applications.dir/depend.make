# Empty dependencies file for fig13_applications.
# This may be replaced when dependencies are built.
