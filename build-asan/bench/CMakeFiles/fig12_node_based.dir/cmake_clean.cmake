file(REMOVE_RECURSE
  "CMakeFiles/fig12_node_based.dir/fig12_node_based.cpp.o"
  "CMakeFiles/fig12_node_based.dir/fig12_node_based.cpp.o.d"
  "fig12_node_based"
  "fig12_node_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_node_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
