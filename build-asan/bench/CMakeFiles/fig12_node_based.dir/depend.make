# Empty dependencies file for fig12_node_based.
# This may be replaced when dependencies are built.
