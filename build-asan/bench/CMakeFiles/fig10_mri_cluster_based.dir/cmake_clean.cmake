file(REMOVE_RECURSE
  "CMakeFiles/fig10_mri_cluster_based.dir/fig10_mri_cluster_based.cpp.o"
  "CMakeFiles/fig10_mri_cluster_based.dir/fig10_mri_cluster_based.cpp.o.d"
  "fig10_mri_cluster_based"
  "fig10_mri_cluster_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mri_cluster_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
