# Empty compiler generated dependencies file for fig10_mri_cluster_based.
# This may be replaced when dependencies are built.
