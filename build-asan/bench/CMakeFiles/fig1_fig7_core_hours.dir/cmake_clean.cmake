file(REMOVE_RECURSE
  "CMakeFiles/fig1_fig7_core_hours.dir/fig1_fig7_core_hours.cpp.o"
  "CMakeFiles/fig1_fig7_core_hours.dir/fig1_fig7_core_hours.cpp.o.d"
  "fig1_fig7_core_hours"
  "fig1_fig7_core_hours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_fig7_core_hours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
