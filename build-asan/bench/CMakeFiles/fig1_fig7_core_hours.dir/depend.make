# Empty dependencies file for fig1_fig7_core_hours.
# This may be replaced when dependencies are built.
