# Empty dependencies file for fig2_cluster_variation.
# This may be replaced when dependencies are built.
