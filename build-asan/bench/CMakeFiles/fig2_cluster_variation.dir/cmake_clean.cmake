file(REMOVE_RECURSE
  "CMakeFiles/fig2_cluster_variation.dir/fig2_cluster_variation.cpp.o"
  "CMakeFiles/fig2_cluster_variation.dir/fig2_cluster_variation.cpp.o.d"
  "fig2_cluster_variation"
  "fig2_cluster_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cluster_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
