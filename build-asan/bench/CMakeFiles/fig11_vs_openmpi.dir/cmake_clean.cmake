file(REMOVE_RECURSE
  "CMakeFiles/fig11_vs_openmpi.dir/fig11_vs_openmpi.cpp.o"
  "CMakeFiles/fig11_vs_openmpi.dir/fig11_vs_openmpi.cpp.o.d"
  "fig11_vs_openmpi"
  "fig11_vs_openmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vs_openmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
