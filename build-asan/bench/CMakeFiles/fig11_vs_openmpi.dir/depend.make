# Empty dependencies file for fig11_vs_openmpi.
# This may be replaced when dependencies are built.
