file(REMOVE_RECURSE
  "CMakeFiles/fig9_frontera_cluster_based.dir/fig9_frontera_cluster_based.cpp.o"
  "CMakeFiles/fig9_frontera_cluster_based.dir/fig9_frontera_cluster_based.cpp.o.d"
  "fig9_frontera_cluster_based"
  "fig9_frontera_cluster_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_frontera_cluster_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
