# Empty compiler generated dependencies file for fig9_frontera_cluster_based.
# This may be replaced when dependencies are built.
