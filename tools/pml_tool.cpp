// pml — command-line front end to the PML-MPI framework.
//
//   pml train   --out model.json [--exclude Frontera,MRI] [--trees N]
//               [--top-features K] [--collectives allgather,alltoall,...]
//               [--threads N] [--cost-source analytic|engine]
//               [--prune-topk K] [--prune-epsilon P] [--hierarchy]
//       Offline stage: build the tuning dataset from the built-in Table-I
//       clusters (minus exclusions) and write the pre-trained bundle.
//       --threads caps training parallelism (0 = all hardware threads,
//       1 = serial); the bundle is bit-identical at any thread count.
//       --cost-source engine measures cells on the event engine with
//       analytic top-k pruning (--prune-topk, --prune-epsilon; see
//       `pml dataset`). --hierarchy trains over label space v2: flat
//       algorithms plus leader-based hierarchical schedules.
//
//   pml dataset --out dataset.json --collective alltoall
//               [--clusters A,B | --exclude A,B] [--cost-source ...]
//               [--prune-topk K] [--prune-epsilon P] [--audit]
//               [--fault-plan plan.json] [--iterations N] [--seed S]
//               [--threads N] [--hierarchy]
//       Build (and persist) one collective's tuning dataset without
//       training: a "dataset"-kind artifact holding every record. The
//       engine cost source accepts a fault plan (which disables pruning —
//       the analytic ranking is fault-blind) and prints the build's
//       measurement/pruning tallies; --audit measures exhaustively and
//       reports the cells pruning would have mislabeled.
//
//   pml compile --model model.json --cluster NAME|spec.json
//               --out table.json [--nodes 1,2,4,8,16] [--ppn 28,56]
//               [--threads N]
//       Online stage: one inference sweep for a cluster, emitting its
//       JSON tuning table. Prints the measured inference time.
//
//   pml query   --table table.json --collective alltoall --nodes 16
//               --ppn 56 --bytes 4096
//       Runtime lookup: print the selected schedule (display name plus
//       the stable label-space-v2 encoding, e.g. "leader:ring+binomial").
//
//   pml inspect --model model.json
//       Show per-collective model shape and feature importances.
//
//   pml clusters
//       List the built-in Table-I cluster specifications.
//
//   pml stats   --metrics metrics.json
//       Pretty-print a metrics.json summary written by --metrics.
//
//   pml doctor  [--dir artifacts/ | --path artifact.json] [--strict]
//               [--repair]
//       Audit on-disk JSON artifacts: classify each as ok / legacy /
//       stale-schema / corrupt / unreadable. Exit 0 always, unless
//       --strict (then nonzero when anything is less than ok). --repair
//       additionally fixes what it can: legacy documents are rewrapped
//       in checksummed envelopes (atomic rewrite), corrupt files are
//       moved to a .quarantine/ sibling directory; ok and stale-schema
//       files are never touched.
//
//   pml serve   [--model model.json] [--port N | --stdio] [--shards N]
//               [--capacity N] [--threads N] [--micro-batch N]
//               [--max-connections N] [--max-line-bytes N]
//               [--read-timeout-ms N] [--queue-limit N]
//       Selector-as-a-service: answer newline-delimited JSON requests
//       (ops: select, table, ping, stats, health — see docs/API.md,
//       "Serve protocol") over TCP on 127.0.0.1:N (0 = ephemeral,
//       printed on stdout) or over stdin/stdout with --stdio. Without
//       --model, or when the artifact is corrupt, serves heuristic
//       answers marked "degraded" and keeps re-checking the artifact on
//       cache misses. The --max-*/--read-timeout-ms/--queue-limit flags
//       set the overload limits (connection cap, line-buffer bound, read
//       deadline, pending-recompile queue bound before shedding).
//
//   pml --version (or `pml version`)
//       Print the release version plus the artifact schema matrix this
//       build writes and reads.
//
// Global options (any command): --trace out.json writes a chrome://tracing
// file for the run; --metrics out.json writes the flat span/counter summary.
//
// Exit statuses: 0 success, 1 unexpected failure, 2 usage error, then one
// per pml::ErrorCode (3 config, 4 io, 5 json, 6 sim, 7 ml, 8 tuning).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/artifact.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/version.hpp"
#include "core/framework.hpp"
#include "core/serve.hpp"
#include "obs/export.hpp"

namespace {

using namespace pml;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: pml <train|dataset|compile|query|inspect|clusters|"
               "stats|doctor|serve> [options]\n"
               "Global options: --trace out.json, --metrics out.json\n"
               "Run `pml <command>` with missing options to see what it "
               "needs; see the header of tools/pml_tool.cpp for details.\n");
  std::exit(error == nullptr ? 0 : 2);
}

/// --key value argument map (flags must all take a value).
std::map<std::string, std::string> parse_args(int argc, char** argv,
                                              int start) {
  std::map<std::string, std::string> args;
  for (int i = start; i < argc; i += 2) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage(("unexpected argument: " + key).c_str());
    if (i + 1 >= argc) usage(("missing value for " + key).c_str());
    args[key.substr(2)] = argv[i + 1];
  }
  return args;
}

std::string require(const std::map<std::string, std::string>& args,
                    const std::string& key) {
  const auto it = args.find(key);
  if (it == args.end()) usage(("missing required --" + key).c_str());
  return it->second;
}

/// std::stoi with the failure mapped onto the pml error taxonomy.
int parse_int(const std::string& text, const std::string& what) {
  try {
    return std::stoi(text);
  } catch (const std::exception&) {
    throw ConfigError("invalid " + what + ": '" + text + "'");
  }
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  try {
    return static_cast<std::uint64_t>(std::stoull(text));
  } catch (const std::exception&) {
    throw ConfigError("invalid " + what + ": '" + text + "'");
  }
}

double parse_double(const std::string& text, const std::string& what) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw ConfigError("invalid " + what + ": '" + text + "'");
  }
}

/// Shared sweep knobs for the commands that build datasets (train and
/// dataset): cost source and the engine-mode pruning layer.
void apply_sweep_args(const std::map<std::string, std::string>& args,
                      core::BuildOptions& build) {
  if (args.contains("cost-source")) {
    build.cost_source = core::cost_source_from_string(args.at("cost-source"));
  }
  if (args.contains("prune-topk")) {
    build.prune_topk = parse_int(args.at("prune-topk"), "--prune-topk");
  }
  if (args.contains("prune-epsilon")) {
    build.prune_epsilon =
        parse_double(args.at("prune-epsilon"), "--prune-epsilon");
  }
}

/// Built-in Table-I clusters filtered by --clusters (keep-list) or
/// --exclude (drop-list); both at once is a usage error.
std::vector<sim::ClusterSpec> select_clusters(
    const std::map<std::string, std::string>& args) {
  if (args.contains("clusters") && args.contains("exclude")) {
    usage("pass --clusters or --exclude, not both");
  }
  if (args.contains("clusters")) {
    std::vector<sim::ClusterSpec> picked;
    for (const auto& name : split(args.at("clusters"), ',')) {
      picked.push_back(sim::cluster_by_name(name));
    }
    return picked;
  }
  std::vector<std::string> excluded;
  if (args.contains("exclude")) excluded = split(args.at("exclude"), ',');
  std::vector<sim::ClusterSpec> kept;
  for (const auto& c : sim::builtin_clusters()) {
    bool skip = false;
    for (const auto& name : excluded) skip = skip || c.name == name;
    if (!skip) kept.push_back(c);
  }
  return kept;
}

std::vector<int> parse_ints(const std::string& csv, const std::string& what) {
  std::vector<int> out;
  for (const auto& part : split(csv, ',')) out.push_back(parse_int(part, what));
  return out;
}

sim::ClusterSpec load_cluster(const std::string& name_or_path) {
  if (name_or_path.size() > 5 &&
      name_or_path.substr(name_or_path.size() - 5) == ".json") {
    // Bare cluster documents and pml-artifact-v1 envelopes both load.
    return sim::ClusterSpec::from_json(
        artifact_payload(Json::parse(read_file(name_or_path)), "cluster"));
  }
  return sim::cluster_by_name(name_or_path);
}

/// `pml train`: offline stage. Parses argv directly (like dataset)
/// because --hierarchy is a boolean flag; installs its own trace/metrics
/// capture so the global options keep working.
int cmd_train(int argc, char** argv) {
  std::map<std::string, std::string> args;
  bool hierarchy = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--hierarchy") {
      hierarchy = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      usage(("train: unexpected argument: " + arg).c_str());
    }
    if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
    args[arg.substr(2)] = argv[++i];
  }

  obs::Sink sink;
  if (args.contains("trace")) sink.chrome_trace = args.at("trace");
  if (args.contains("metrics")) sink.metrics = args.at("metrics");
  obs::ScopedCapture capture(std::move(sink));

  const std::string out = require(args, "out");
  const std::vector<sim::ClusterSpec> training = select_clusters(args);

  core::TrainOptions options;
  apply_sweep_args(args, options.build);
  options.build.hierarchy = hierarchy;
  if (args.contains("trees")) {
    options.forest.n_trees = parse_int(args.at("trees"), "--trees");
  }
  if (args.contains("top-features")) {
    options.top_features = parse_int(args.at("top-features"), "--top-features");
  }
  if (args.contains("collectives")) {
    options.collectives.clear();
    for (const auto& name : split(args.at("collectives"), ',')) {
      options.collectives.push_back(coll::collective_from_string(name));
    }
  }
  if (args.contains("threads")) {
    options.threads = parse_int(args.at("threads"), "--threads");
  }

  std::printf("training on %zu clusters...\n", training.size());
  const auto fw = core::PmlFramework::train(training, options);
  write_artifact(out, fw.to_json(), "model");
  std::printf("model bundle written to %s\n", out.c_str());
  return 0;
}

/// `pml dataset`: build and persist one collective's tuning dataset.
/// Parses argv directly because --audit is a boolean flag.
int cmd_dataset(int argc, char** argv) {
  std::map<std::string, std::string> args;
  bool audit = false;
  bool hierarchy = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--audit") {
      audit = true;
      continue;
    }
    if (arg == "--hierarchy") {
      hierarchy = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      usage(("dataset: unexpected argument: " + arg).c_str());
    }
    if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
    args[arg.substr(2)] = argv[++i];
  }

  obs::Sink sink;
  if (args.contains("trace")) sink.chrome_trace = args.at("trace");
  if (args.contains("metrics")) sink.metrics = args.at("metrics");
  obs::ScopedCapture capture(std::move(sink));

  const std::string out = require(args, "out");
  const auto collective =
      coll::collective_from_string(require(args, "collective"));
  const std::vector<sim::ClusterSpec> clusters = select_clusters(args);

  core::BuildOptions options;
  apply_sweep_args(args, options);
  options.prune_audit = audit;
  options.hierarchy = hierarchy;
  if (args.contains("iterations")) {
    options.iterations = parse_int(args.at("iterations"), "--iterations");
  }
  if (args.contains("seed")) {
    options.seed = parse_u64(args.at("seed"), "--seed");
  }
  if (args.contains("threads")) {
    options.threads = parse_int(args.at("threads"), "--threads");
  }
  if (args.contains("fault-plan")) {
    options.faults = sim::FaultPlan::from_json(artifact_payload(
        Json::parse(read_file(args.at("fault-plan"))), "fault-plan"));
  }

  std::printf("building MPI_%s dataset on %zu clusters (%s cost source)...\n",
              coll::to_string(collective).c_str(), clusters.size(),
              core::to_string(options.cost_source).c_str());
  core::BuildStats stats;
  const auto records =
      core::build_records(clusters, collective, options, stats);
  write_artifact(out, core::records_to_json(records, collective), "dataset");
  std::printf("%llu records written to %s\n",
              static_cast<unsigned long long>(stats.cells), out.c_str());
  std::printf("measured %llu evaluations (%llu pruned, %llu rescued by the "
              "epsilon-sample)\n",
              static_cast<unsigned long long>(stats.measured_evals),
              static_cast<unsigned long long>(stats.pruned_evals),
              static_cast<unsigned long long>(stats.epsilon_evals));
  if (audit) {
    std::printf("audit: pruning would have mislabeled %llu/%llu cells\n",
                static_cast<unsigned long long>(stats.prune_mispredictions),
                static_cast<unsigned long long>(stats.cells));
  }
  return 0;
}

int cmd_compile(const std::map<std::string, std::string>& args) {
  auto fw = core::PmlFramework::load_file(require(args, "model"));
  const sim::ClusterSpec cluster = load_cluster(require(args, "cluster"));
  const std::string out = require(args, "out");

  core::CompileOptions options;  // empty grids = the cluster's own sweep
  if (args.contains("nodes")) {
    options.node_counts = parse_ints(args.at("nodes"), "--nodes");
  }
  if (args.contains("ppn")) {
    options.ppn_values = parse_ints(args.at("ppn"), "--ppn");
  }
  if (args.contains("threads")) {
    options.threads = parse_int(args.at("threads"), "--threads");
  }

  const core::TuningTable table = fw.compile_for(cluster, options);
  write_artifact(out, table.to_json(), "tuning-table");
  std::printf("tuning table for '%s' written to %s (inference: %s)\n",
              cluster.name.c_str(), out.c_str(),
              format_time(fw.inference_seconds()).c_str());
  return 0;
}

int cmd_query(const std::map<std::string, std::string>& args) {
  const core::TuningTable table = core::TuningTable::from_json(artifact_payload(
      Json::parse(read_file(require(args, "table"))), "tuning-table"));
  const auto collective =
      coll::collective_from_string(require(args, "collective"));
  const int nodes = parse_int(require(args, "nodes"), "--nodes");
  const int ppn = parse_int(require(args, "ppn"), "--ppn");
  const auto bytes = parse_u64(require(args, "bytes"), "--bytes");
  const coll::Selection s = table.lookup(collective, nodes, ppn, bytes);
  std::printf("%s [%s]\n", s.display().c_str(), s.encode().c_str());
  return 0;
}

int cmd_inspect(const std::map<std::string, std::string>& args) {
  const auto fw = core::PmlFramework::load_file(require(args, "model"));
  for (const auto collective : coll::all_collectives()) {
    std::vector<double> importances;
    try {
      importances = fw.full_feature_importances(collective);
    } catch (const TuningError&) {
      continue;  // bundle has no model for this collective
    }
    const auto& forest = fw.model(collective);
    std::printf("MPI_%s: %zu trees over %zu features\n",
                coll::to_string(collective).c_str(), forest.tree_count(),
                fw.selected_columns(collective).size());
    TextTable t({"feature", "importance"});
    for (std::size_t f = 0; f < importances.size(); ++f) {
      if (importances[f] <= 0.0) continue;
      t.add_row({core::feature_names()[f], format_double(importances[f], 4)});
    }
    std::printf("%s\n", t.str().c_str());
  }
  return 0;
}

int cmd_clusters() {
  TextTable t({"name", "processor", "interconnect", "cores", "L3 (MB)",
               "mem BW (GB/s)"});
  for (const auto& c : sim::builtin_clusters()) {
    t.add_row({c.name, c.processor, sim::to_string(c.interconnect),
               std::to_string(c.hw.cores), format_double(c.hw.l3_cache_mb, 0),
               format_double(c.hw.mem_bw_gbs, 0)});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}

/// Pretty-print a metrics.json summary (written by a --metrics run).
int cmd_stats(const std::map<std::string, std::string>& args) {
  const Json doc = Json::parse(read_file(require(args, "metrics")));
  if (!doc.contains("format") ||
      doc.at("format").as_string() != "pml-metrics-v1") {
    throw ConfigError("not a pml-metrics-v1 file");
  }

  const auto ns_str = [](double ns) { return format_time(ns / 1e9); };
  const auto& spans = doc.at("spans").as_object();
  if (!spans.empty()) {
    TextTable t({"span", "count", "total", "p50", "p95", "max"});
    t.set_title("spans");
    for (const auto& [name, s] : spans) {
      t.add_row({name, std::to_string(s.at("count").as_int()),
                 ns_str(s.at("total_ns").as_number()),
                 ns_str(s.at("p50_ns").as_number()),
                 ns_str(s.at("p95_ns").as_number()),
                 ns_str(s.at("max_ns").as_number())});
    }
    std::printf("%s\n", t.str().c_str());
  }

  const auto& counters = doc.at("counters").as_object();
  if (!counters.empty()) {
    TextTable t({"counter", "value"});
    t.set_title("counters");
    for (const auto& [name, v] : counters) {
      t.add_row({name, std::to_string(v.as_int())});
    }
    std::printf("%s\n", t.str().c_str());
  }

  const auto& gauges = doc.at("gauges").as_object();
  if (!gauges.empty()) {
    TextTable t({"gauge", "value", "max"});
    t.set_title("gauges");
    for (const auto& [name, g] : gauges) {
      t.add_row({name, std::to_string(g.at("value").as_int()),
                 std::to_string(g.at("max").as_int())});
    }
    std::printf("%s\n", t.str().c_str());
  }
  return 0;
}

/// `pml doctor`: audit artifact files. Parses argv directly because
/// --strict/--repair are boolean flags and parse_args() requires --key
/// value pairs.
int cmd_doctor(int argc, char** argv) {
  bool strict = false;
  bool repair = false;
  std::string dir;
  std::string path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--repair") {
      repair = true;
    } else if ((arg == "--dir" || arg == "--path") && i + 1 < argc) {
      (arg == "--dir" ? dir : path) = argv[++i];
    } else {
      usage(("doctor: unexpected argument: " + arg).c_str());
    }
  }
  if (!dir.empty() && !path.empty()) {
    usage("doctor: pass --dir or --path, not both");
  }

  std::vector<std::string> files;
  if (!path.empty()) {
    files.push_back(path);
  } else {
    const std::string root = dir.empty() ? "." : dir;
    if (!std::filesystem::is_directory(root)) {
      throw IoError("doctor: not a directory: " + root);
    }
    for (const auto& entry : std::filesystem::directory_iterator(root)) {
      if (entry.is_regular_file() && entry.path().extension() == ".json") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
  }
  if (files.empty()) {
    std::printf("no artifacts found\n");
    return 0;
  }

  int tally[5] = {0, 0, 0, 0, 0};
  int failed_repairs = 0;
  if (repair) {
    TextTable t({"artifact", "verdict", "action", "detail"});
    for (const auto& file : files) {
      const RepairResult fix = repair_artifact(file);
      ++tally[static_cast<int>(fix.info.status)];
      failed_repairs += fix.action == RepairAction::kFailed;
      t.add_row({file, to_string(fix.info.status), to_string(fix.action),
                 fix.detail});
    }
    std::printf("%s", t.str().c_str());
  } else {
    TextTable t({"artifact", "verdict", "kind", "schema", "detail"});
    for (const auto& file : files) {
      const ArtifactInfo info = inspect_artifact(file);
      ++tally[static_cast<int>(info.status)];
      t.add_row({file, to_string(info.status), info.kind,
                 info.schema > 0 ? std::to_string(info.schema) : "-",
                 info.detail});
    }
    std::printf("%s", t.str().c_str());
  }
  std::printf("%d ok, %d legacy, %d stale-schema, %d corrupt, %d unreadable\n",
              tally[static_cast<int>(ArtifactStatus::kOk)],
              tally[static_cast<int>(ArtifactStatus::kLegacy)],
              tally[static_cast<int>(ArtifactStatus::kStaleSchema)],
              tally[static_cast<int>(ArtifactStatus::kCorrupt)],
              tally[static_cast<int>(ArtifactStatus::kUnreadable)]);

  if (strict) {
    // --repair fixes legacy and corrupt files, so only what it could not
    // fix (plus schema skew, which is not damage) stays gating.
    if (repair && failed_repairs == 0) {
      return tally[static_cast<int>(ArtifactStatus::kStaleSchema)] > 0
                 ? exit_status(ErrorCode::kJson)
                 : 0;
    }
    if (tally[static_cast<int>(ArtifactStatus::kUnreadable)] > 0) {
      return exit_status(ErrorCode::kIo);
    }
    if (repair ||
        tally[static_cast<int>(ArtifactStatus::kCorrupt)] > 0 ||
        tally[static_cast<int>(ArtifactStatus::kStaleSchema)] > 0 ||
        tally[static_cast<int>(ArtifactStatus::kLegacy)] > 0) {
      return exit_status(ErrorCode::kJson);
    }
  }
  return 0;
}

/// `pml serve`: the selector-as-a-service daemon. Parses argv directly
/// (like doctor) because --stdio is a boolean flag; installs its own
/// trace/metrics capture so --trace/--metrics keep working. The metrics
/// file is written when the transport loop ends — i.e. on stdin EOF for
/// --stdio; a TCP daemon killed by a signal writes nothing.
int cmd_serve(int argc, char** argv) {
  core::ServeOptions options;
  bool stdio = false;
  int port = 0;
  obs::Sink sink;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--model") {
      options.model_path = value();
    } else if (arg == "--port") {
      port = parse_int(value(), "--port");
    } else if (arg == "--shards") {
      options.shards = parse_int(value(), "--shards");
    } else if (arg == "--capacity") {
      options.shard_capacity =
          static_cast<std::size_t>(parse_int(value(), "--capacity"));
    } else if (arg == "--threads") {
      options.compile.threads = parse_int(value(), "--threads");
    } else if (arg == "--micro-batch") {
      options.micro_batch = parse_int(value(), "--micro-batch");
    } else if (arg == "--max-connections") {
      options.max_connections = parse_int(value(), "--max-connections");
    } else if (arg == "--max-line-bytes") {
      options.max_line_bytes =
          static_cast<std::size_t>(parse_int(value(), "--max-line-bytes"));
    } else if (arg == "--read-timeout-ms") {
      options.read_timeout_ms = parse_int(value(), "--read-timeout-ms");
    } else if (arg == "--queue-limit") {
      options.queue_limit = parse_int(value(), "--queue-limit");
    } else if (arg == "--trace") {
      sink.chrome_trace = value();
    } else if (arg == "--metrics") {
      sink.metrics = value();
    } else {
      usage(("serve: unexpected argument: " + arg).c_str());
    }
  }
  obs::ScopedCapture capture(std::move(sink));

  core::ServeEngine engine(options);
  if (!options.model_path.empty() && !engine.model_loaded()) {
    std::fprintf(stderr,
                 "pml: warning: serve: model '%s' unusable; serving "
                 "heuristic answers until it is repaired\n",
                 options.model_path.c_str());
  }
  if (stdio) {
    core::serve_stdio(engine, stdin, stdout);
    return 0;
  }
  core::TcpServer server(engine);
  const int bound = server.start(port);
  std::printf("pml serve listening on 127.0.0.1:%d\n", bound);
  std::fflush(stdout);
  server.wait();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  if (command == "--version" || command == "version") {
    const std::string text = version_text();
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }
  try {
    // doctor, serve, dataset, and train take boolean flags, so they
    // parse argv themselves.
    if (command == "doctor") return cmd_doctor(argc, argv);
    if (command == "serve") return cmd_serve(argc, argv);
    if (command == "dataset") return cmd_dataset(argc, argv);
    if (command == "train") return cmd_train(argc, argv);
    const auto args = parse_args(argc, argv, 2);
    if (command == "stats") return cmd_stats(args);

    // Global trace/metrics capture: enabled for the whole command, files
    // written when the capture leaves scope (after the command returns).
    obs::Sink sink;
    if (args.contains("trace")) sink.chrome_trace = args.at("trace");
    if (args.contains("metrics")) sink.metrics = args.at("metrics");
    obs::ScopedCapture capture(std::move(sink));

    if (command == "compile") return cmd_compile(args);
    if (command == "query") return cmd_query(args);
    if (command == "inspect") return cmd_inspect(args);
    if (command == "clusters") return cmd_clusters();
    usage(("unknown command: " + command).c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_status(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
