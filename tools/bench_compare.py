#!/usr/bin/env python3
"""Compare two google-benchmark JSON files for performance regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.20]

Matches benchmarks by name, using the `_median` aggregate when present
(repetitions were requested) and the raw real_time otherwise. Exits nonzero
if any benchmark present in both files regressed by more than the threshold
(default 20% on median real_time). New or removed benchmarks are reported
but never fail the comparison.
"""

import argparse
import json
import sys


def load_times(path):
    """Map of benchmark name -> representative real_time (ns-scale units)."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    raw = {}
    medians = {}
    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[name.removesuffix("_median")] = float(b["real_time"])
        elif name.endswith("_median"):
            medians[name.removesuffix("_median")] = float(b["real_time"])
        else:
            raw.setdefault(name, []).append(float(b["real_time"]))
    times = {}
    for name, samples in raw.items():
        samples.sort()
        times[name] = samples[len(samples) // 2]
    times.update(medians)  # aggregates win over raw samples
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="fractional regression that fails the comparison (default 0.20)",
    )
    args = parser.parse_args()

    base = load_times(args.baseline)
    cand = load_times(args.candidate)
    if not base:
        print(f"error: no benchmarks found in {args.baseline}", file=sys.stderr)
        return 2
    if not cand:
        print(f"error: no benchmarks found in {args.candidate}", file=sys.stderr)
        return 2

    regressions = []
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            print(f"  NEW      {name}")
            continue
        if name not in cand:
            print(f"  REMOVED  {name}")
            continue
        b, c = base[name], cand[name]
        if b <= 0.0:
            continue
        delta = c / b - 1.0
        marker = "  ok     "
        if delta > args.threshold:
            marker = "  REGRESS"
            regressions.append((name, delta))
        print(f"{marker}  {name}: {b:.1f} -> {c:.1f} ({delta:+.1%})")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
