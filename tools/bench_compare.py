#!/usr/bin/env python3
"""Compare two benchmark or metrics JSON files for performance regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.20]

Two input formats are auto-detected per file:

* google-benchmark JSON (``--benchmark_out``): benchmarks are matched by
  name, using the ``_median`` aggregate when present (repetitions were
  requested) and the raw real_time otherwise. Throughput counters named
  ``*_per_sec`` (e.g. the batch-inference ``rows_per_sec`` series) are also
  compared, prefixed ``rate:``, with the regression direction inverted:
  for a rate, *lower* is worse.
* pml-metrics-v1 JSON (``pml --metrics`` / ``obs::write_metrics``): span
  summaries are matched by name (prefixed ``span:``) and compared on
  total_ns. Counter deltas are reported informationally and never fail the
  comparison — event counts are workload facts, not performance.

Exits nonzero if any timed series present in both files regressed by more
than the threshold (default 20%) — slower for times, lower for rates. New
or removed entries are reported but never fail the comparison.
"""

import argparse
import json
import sys


def load_benchmark_times(data):
    """(times, rates) from a google-benchmark document.

    ``times``: benchmark name -> representative real_time (ns-scale units).
    ``rates``: ``rate:<name>/<counter>`` -> throughput for every user
    counter ending in ``_per_sec`` (kIsRate counters land in the JSON as
    plain keys on the benchmark object). Rates are higher-is-better.
    """
    raw = {}
    medians = {}
    raw_rates = {}
    median_rates = {}

    def rate_counters(b):
        return {k: float(v) for k, v in b.items()
                if k.endswith("_per_sec") and isinstance(v, (int, float))}

    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                base = name.removesuffix("_median")
                medians[base] = float(b["real_time"])
                for counter, value in rate_counters(b).items():
                    median_rates[f"rate:{base}/{counter}"] = value
        elif name.endswith("_median"):
            medians[name.removesuffix("_median")] = float(b["real_time"])
        else:
            raw.setdefault(name, []).append(float(b["real_time"]))
            for counter, value in rate_counters(b).items():
                raw_rates.setdefault(f"rate:{name}/{counter}", []).append(value)
    times = {}
    for name, samples in raw.items():
        samples.sort()
        times[name] = samples[len(samples) // 2]
    times.update(medians)  # aggregates win over raw samples
    rates = {}
    for name, samples in raw_rates.items():
        samples.sort()
        rates[name] = samples[len(samples) // 2]
    rates.update(median_rates)
    return times, rates


def load_metrics(data):
    """(times, counters) from a pml-metrics-v1 document.

    Spans compare on total_ns (the Fig. 4-style stage totals); the
    ``span:`` prefix keeps the namespace disjoint from benchmark names.
    """
    times = {}
    for name, stats in data.get("spans", {}).items():
        times[f"span:{name}"] = float(stats["total_ns"])
    counters = {
        name: int(value) for name, value in data.get("counters", {}).items()
    }
    return times, counters


def load_file(path):
    """(times, rates, counters) for either supported format.

    Bad inputs (missing file, truncated/invalid JSON) are diagnosed on
    stderr and exit with status 2 — a CI log should show what went wrong,
    not a traceback.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except OSError as err:
        print(f"error: cannot read {path}: {err.strerror or err}",
              file=sys.stderr)
        raise SystemExit(2)
    except json.JSONDecodeError as err:
        print(f"error: {path} is not valid JSON (truncated?): {err}",
              file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(data, dict):
        print(f"error: {path} is not a JSON object "
              f"(got {type(data).__name__})", file=sys.stderr)
        raise SystemExit(2)
    if data.get("format") == "pml-metrics-v1":
        times, counters = load_metrics(data)
        return times, {}, counters
    times, rates = load_benchmark_times(data)
    return times, rates, {}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="fractional regression that fails the comparison (default 0.20)",
    )
    args = parser.parse_args()

    base, base_rates, base_counters = load_file(args.baseline)
    cand, cand_rates, cand_counters = load_file(args.candidate)
    if not base:
        print(f"error: no timed series found in {args.baseline}",
              file=sys.stderr)
        return 2
    if not cand:
        print(f"error: no timed series found in {args.candidate}",
              file=sys.stderr)
        return 2

    regressions = []
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            print(f"  NEW      {name}")
            continue
        if name not in cand:
            print(f"  REMOVED  {name}")
            continue
        b, c = base[name], cand[name]
        if b <= 0.0:
            continue
        delta = c / b - 1.0
        marker = "  ok     "
        if delta > args.threshold:
            marker = "  REGRESS"
            regressions.append((name, delta))
        print(f"{marker}  {name}: {b:.1f} -> {c:.1f} ({delta:+.1%})")

    # Throughput counters: same threshold, inverted direction — a rate
    # that *drops* beyond the threshold is the regression.
    for name in sorted(set(base_rates) | set(cand_rates)):
        if name not in base_rates:
            print(f"  NEW      {name}")
            continue
        if name not in cand_rates:
            print(f"  REMOVED  {name}")
            continue
        b, c = base_rates[name], cand_rates[name]
        if b <= 0.0:
            continue
        delta = c / b - 1.0
        marker = "  ok     "
        if delta < -args.threshold:
            marker = "  REGRESS"
            regressions.append((name, delta))
        print(f"{marker}  {name}: {b:.1f} -> {c:.1f} ({delta:+.1%})")

    # Counter deltas (metrics inputs only): informational. A changed event
    # count means the workload changed, which is worth a line but is not a
    # regression verdict this tool can make.
    for name in sorted(set(base_counters) | set(cand_counters)):
        b = base_counters.get(name)
        c = cand_counters.get(name)
        if b == c:
            continue
        print(f"  counter  {name}: {b} -> {c}")

    if regressions:
        print(
            f"\n{len(regressions)} series regressed beyond "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
