#!/usr/bin/env python3
"""Self-check for bench_compare.py's input handling.

Run directly or via ctest (bench_compare_robustness). Plain python — no
pytest in the image — but each check prints pytest-style PASSED/FAILED
lines and the script exits nonzero on the first failure.

Covers the failure modes a CI pipeline actually produces: a benchmark
that crashed before writing its output (missing file), a run killed
mid-write (truncated JSON), and the healthy path as a control.
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def run(*argv):
    return subprocess.run([sys.executable, SCRIPT, *argv],
                          capture_output=True, text=True)


def check(name, result, want_rc, want_stderr=""):
    ok = result.returncode == want_rc
    if want_stderr:
        ok = ok and want_stderr in result.stderr
    # A traceback is a bug in any mode: diagnostics must be deliberate.
    ok = ok and "Traceback" not in result.stderr
    verdict = "PASSED" if ok else "FAILED"
    print(f"{name} ... {verdict}")
    if not ok:
        print(f"  rc={result.returncode} (want {want_rc})")
        print(f"  stderr: {result.stderr!r}")
        sys.exit(1)


def main():
    with tempfile.TemporaryDirectory(prefix="bench_compare_test_") as tmp:
        good = os.path.join(tmp, "good.json")
        with open(good, "w", encoding="utf-8") as f:
            json.dump({"benchmarks": [
                {"name": "BM_x", "real_time": 100.0},
            ]}, f)

        truncated = os.path.join(tmp, "truncated.json")
        with open(truncated, "w", encoding="utf-8") as f:
            f.write(open(good, encoding="utf-8").read()[:20])

        not_an_object = os.path.join(tmp, "list.json")
        with open(not_an_object, "w", encoding="utf-8") as f:
            f.write("[1, 2, 3]\n")

        missing = os.path.join(tmp, "does_not_exist.json")

        # Throughput counters compare with the direction inverted: a rate
        # that drops beyond the threshold fails, a rate that rises never
        # does (and slower real_time still fails as before).
        fast = os.path.join(tmp, "fast.json")
        with open(fast, "w", encoding="utf-8") as f:
            json.dump({"benchmarks": [
                {"name": "BM_batch", "real_time": 100.0,
                 "rows_per_sec": 1.0e6},
            ]}, f)
        slow = os.path.join(tmp, "slow.json")
        with open(slow, "w", encoding="utf-8") as f:
            json.dump({"benchmarks": [
                {"name": "BM_batch", "real_time": 100.0,
                 "rows_per_sec": 0.5e6},
            ]}, f)

        check("missing baseline file", run(missing, good), 2, "error:")
        check("missing candidate file", run(good, missing), 2, "error:")
        check("truncated JSON", run(good, truncated), 2, "not valid JSON")
        check("non-object JSON", run(good, not_an_object), 2,
              "not a JSON object")
        check("healthy pair", run(good, good), 0)
        check("rate drop regresses", run(fast, slow), 1, "regressed")
        check("rate gain passes", run(slow, fast), 0)
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
