// Scenario: an application scientist lands on a cluster nobody has tuned
// for — the paper's core motivation (§II). Compare the selection
// strategies available to them on a *custom* cluster spec that is not in
// the training set at all:
//
//   - MVAPICH2 default static table (what they get out of the box),
//   - exhaustive offline micro-benchmarking (optimal, but days of
//     core-hours before the first real run),
//   - PML-MPI (sub-second inference with the shipped pre-trained model).
//
// Build & run:  ./build/examples/unseen_cluster
#include <cmath>
#include <cstdio>

#include "coll/cost.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/framework.hpp"
#include "core/overhead.hpp"

int main() {
  using namespace pml;

  // A brand-new machine: Sapphire-Rapids-style nodes on HDR InfiniBand.
  sim::ClusterSpec novel;
  novel.name = "Atlas (new deployment)";
  novel.processor = "Dual-socket 48-core, 3.8 GHz boost";
  novel.interconnect = sim::Interconnect::kInfinibandHdr;
  novel.hw.cpu_max_clock_ghz = 3.8;
  novel.hw.l3_cache_mb = 210.0;
  novel.hw.mem_bw_gbs = 307.0;
  novel.hw.cores = 96;
  novel.hw.threads = 192;
  novel.hw.sockets = 2;
  novel.hw.numa_nodes = 8;
  novel.hw.pcie_lanes = 16;
  novel.hw.pcie_version = 4;
  novel.hw.hca_link_speed_gbps = sim::lane_speed_gbps(novel.interconnect);
  novel.hw.hca_link_width = 4;
  novel.node_counts = {1, 2, 4, 8};
  novel.ppn_values = {48, 96};
  novel.message_sizes = sim::power_of_two_sizes(21);

  std::printf("New cluster: %s\n  %s, %s\n\n", novel.name.c_str(),
              novel.processor.c_str(),
              sim::to_string(novel.interconnect).c_str());

  // The shipped model has never seen this machine.
  auto framework = core::PmlFramework::train(
      std::span<const sim::ClusterSpec>(sim::builtin_clusters()));
  core::MvapichDefaultSelector mvapich;
  core::OracleSelector oracle;

  // What would each strategy cost before the first production run?
  // Empty CompileOptions grids fall back to the cluster's own sweep.
  const auto table = framework.compile_for(novel);
  const double micro_hours = core::microbenchmark_core_hours(
      novel, coll::Collective::kAlltoall, 8, 96, novel.message_sizes);
  std::printf("Startup cost on this cluster:\n");
  std::printf("  offline micro-benchmarking : %.1f core-hours\n", micro_hours);
  std::printf("  PML-MPI inference          : %s on one core\n\n",
              format_time(framework.inference_seconds()).c_str());

  // And what quality of selection does each deliver at 8 nodes x 96 ppn?
  const sim::Topology topo{8, 96};
  const sim::NetworkModel model(novel, topo);
  TextTable results({"msg size", "default pick", "PML pick", "oracle pick",
                     "default/oracle", "PML/oracle"});
  results.set_title("MPI_Alltoall, 8 nodes x 96 PPN");
  double geo_def = 0.0;
  double geo_pml = 0.0;
  int count = 0;
  for (std::uint64_t msg = 1; msg <= (1u << 20); msg <<= 4) {
    const auto pick_def =
        mvapich.select(coll::Collective::kAlltoall, novel, topo, msg);
    const auto pick_pml =
        table.lookup(coll::Collective::kAlltoall, topo.nodes, topo.ppn, msg);
    const auto pick_orc =
        oracle.select(coll::Collective::kAlltoall, novel, topo, msg);
    const double t_def = coll::analytic_cost(novel, topo, pick_def, msg);
    const double t_pml = coll::analytic_cost(novel, topo, pick_pml, msg);
    const double t_orc = coll::analytic_cost(novel, topo, pick_orc, msg);
    geo_def += std::log(t_def / t_orc);
    geo_pml += std::log(t_pml / t_orc);
    ++count;
    char rd[16], rp[16];
    std::snprintf(rd, sizeof rd, "%.2fx", t_def / t_orc);
    std::snprintf(rp, sizeof rp, "%.2fx", t_pml / t_orc);
    results.add_row({format_bytes(msg), pick_def.encode(),
                     pick_pml.encode(), pick_orc.encode(), rd,
                     rp});
  }
  std::printf("%s\n", results.str().c_str());
  std::printf("Geomean distance from optimal: default %.1f%%, PML %.1f%%\n",
              (std::exp(geo_def / count) - 1.0) * 100.0,
              (std::exp(geo_pml / count) - 1.0) * 100.0);
  return 0;
}
