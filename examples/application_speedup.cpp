// End-to-end application impact: run the MiniFE and Gromacs proxy
// applications under different tuning strategies and report the time
// breakdown — the experiment a performance engineer would run before
// adopting the framework (paper §VII-E).
//
// Build & run:  ./build/examples/application_speedup
#include <cstdio>

#include "apps/proxies.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/framework.hpp"

int main() {
  using namespace pml;

  std::vector<sim::ClusterSpec> training;
  for (const auto& c : sim::builtin_clusters()) {
    if (c.name != "MRI") training.push_back(c);
  }
  auto framework = core::PmlFramework::train(training);
  core::MvapichDefaultSelector mvapich;
  core::RandomSelector random_sel(3);

  const auto& mri = sim::cluster_by_name("MRI");
  const sim::Topology topo{4, 64};
  std::printf("Cluster: MRI (unseen), %d nodes x %d PPN = %d processes\n\n",
              topo.nodes, topo.ppn, topo.world_size());

  const struct {
    const char* name;
    core::Selector* selector;
  } strategies[] = {
      {"PML-MPI", &framework},
      {"MVAPICH default", &mvapich},
      {"Random", &random_sel},
  };

  for (const bool gromacs : {false, true}) {
    TextTable table({"strategy", "total", "compute", "allgather", "alltoall"});
    table.set_title(gromacs ? "Gromacs BenchMEM proxy (100 MD steps)"
                            : "MiniFE CG proxy (200 iterations)");
    double base = 0.0;
    for (const auto& s : strategies) {
      const apps::ProxyResult r =
          gromacs ? apps::run_gromacs_proxy(mri, topo, *s.selector)
                  : apps::run_minife_proxy(mri, topo, *s.selector);
      if (s.selector == &framework) base = r.total_seconds;
      table.add_row({s.name, format_time(r.total_seconds),
                     format_time(r.compute_seconds),
                     format_time(r.allgather_seconds),
                     format_time(r.alltoall_seconds)});
      if (s.selector != &framework) {
        std::fprintf(stderr, "  %s vs PML: %+.2f%%\n", s.name,
                     (r.total_seconds / base - 1.0) * 100.0);
      }
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "A better collective selection shrinks only the communication rows — "
      "the compute column is identical across strategies.\n");
  return 0;
}
