// Collective explorer: run every flat algorithm of a collective on the
// event-driven simulator (real payloads, NIC contention, per-rank clocks)
// and print the timing landscape — the tool you reach for when deciding
// whether the cost model's crossovers are trustworthy on a new topology.
//
// Usage:  ./build/examples/collective_explorer [cluster] [nodes] [ppn]
// e.g.:   ./build/examples/collective_explorer Frontera 2 8
#include <cstdio>
#include <cstdlib>

#include "coll/runner.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "sim/hardware.hpp"

int main(int argc, char** argv) {
  using namespace pml;

  const std::string cluster_name = argc > 1 ? argv[1] : "Frontera";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 2;
  const int ppn = argc > 3 ? std::atoi(argv[3]) : 8;
  const auto& cluster = sim::cluster_by_name(cluster_name);
  const sim::Topology topo{nodes, ppn};

  std::printf("Cluster %s, %d nodes x %d PPN (%d ranks), event-driven run\n\n",
              cluster.name.c_str(), nodes, ppn, topo.world_size());

  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    const auto algorithms =
        coll::valid_algorithms(collective, topo.world_size());
    std::vector<std::string> header = {"msg size"};
    for (const auto a : algorithms) header.push_back(coll::display_name(a));
    header.push_back("winner");
    TextTable table(std::move(header));
    table.set_title("MPI_" + std::string(collective ==
                                                 coll::Collective::kAllgather
                                             ? "Allgather"
                                             : "Alltoall"));

    for (std::uint64_t msg = 1; msg <= (1u << 16); msg <<= 2) {
      std::vector<std::string> row = {format_bytes(msg)};
      double lo = 1e300;
      std::size_t best = 0;
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        const auto result =
            coll::run_collective(cluster, topo, algorithms[a], msg);
        row.push_back(format_time(result.seconds));
        if (result.seconds < lo) {
          lo = result.seconds;
          best = a;
        }
      }
      row.push_back(coll::display_name(algorithms[best]));
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "Every cell above moved real payload bytes through the simulator and "
      "was verified bit-for-bit against the MPI-specified result.\n");
  return 0;
}
