// Quickstart: the full PML-MPI lifecycle in one file.
//
//  1. Offline stage: train the pre-trained model on the Table-I clusters
//     (in a real deployment this JSON bundle ships with the MPI library).
//  2. Online stage: arrive at a "new" cluster, compile a tuning table with
//     one inference sweep, and save it as JSON.
//  3. Runtime: look up algorithms from the table and run one collective on
//     the simulated cluster to see the choice in action.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "coll/runner.hpp"
#include "common/strings.hpp"
#include "core/framework.hpp"

int main() {
  using namespace pml;

  // ---- 1. Offline training (ships with the library) ----------------------
  std::vector<sim::ClusterSpec> training;
  for (const auto& c : sim::builtin_clusters()) {
    if (c.name != "Frontera") training.push_back(c);  // keep Frontera unseen
  }
  std::printf("Training the pre-trained model on %zu clusters...\n",
              training.size());
  auto framework = core::PmlFramework::train(training);

  const Json bundle = framework.to_json();
  write_file("/tmp/pml_model.json", bundle.dump(2));
  std::printf("Model bundle saved to /tmp/pml_model.json (%zu bytes)\n\n",
              bundle.dump().size());

  // ---- 2. Online stage on the unseen cluster ------------------------------
  auto shipped = core::PmlFramework::load(
      Json::parse(read_file("/tmp/pml_model.json")));
  const auto& frontera = sim::cluster_by_name("Frontera");
  const std::vector<int> nodes = {1, 2, 4, 8, 16};
  const std::vector<int> ppns = {28, 56};
  const auto sizes = sim::power_of_two_sizes(21);

  const core::TuningTable table =
      shipped.compile_for(frontera, core::CompileOptions::sweep(nodes, ppns, sizes));
  write_file("/tmp/pml_frontera_tuning.json", table.to_json().dump(2));
  std::printf("Compiled tuning table for unseen cluster '%s' in %s\n",
              frontera.name.c_str(),
              format_time(shipped.inference_seconds()).c_str());
  std::printf("Tuning table saved to /tmp/pml_frontera_tuning.json\n\n");

  // ---- 3. Application runtime ---------------------------------------------
  const sim::Topology topo{4, 28};
  for (const std::uint64_t msg : {64ull, 4096ull, 262144ull}) {
    const coll::Selection choice =
        table.lookup(coll::Collective::kAlltoall, topo.nodes, topo.ppn, msg);
    const auto run = coll::run_selection(frontera, topo, choice, msg);
    std::printf(
        "MPI_Alltoall %7s : table selects %-14s -> %-10s (payload %s)\n",
        format_bytes(msg).c_str(), choice.display().c_str(),
        format_time(run.seconds).c_str(),
        run.verified ? "verified" : "unverified");
  }
  return 0;
}
