// Extension bench (paper §IX future work): the framework trained on
// MPI_Allreduce and MPI_Bcast tuning data, evaluated leave-cluster-out
// against the static defaults — demonstrating that the PML-MPI approach
// carries over to additional collectives unchanged.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pml;
  std::printf(
      "== Extension: pre-trained selection for MPI_Allreduce / MPI_Bcast "
      "(future work of paper §IX) ==\n\n");

  core::TrainOptions options = bench::default_train_options();
  options.collectives = {coll::Collective::kAllreduce,
                         coll::Collective::kBcast};
  auto fw = core::PmlFramework::train(bench::clusters_except({"Frontera", "MRI"}),
                                      options);
  core::MvapichDefaultSelector mvapich;

  const struct {
    const char* label;
    const char* cluster;
    coll::Collective collective;
    int nodes;
    int ppn;
    std::uint64_t max_msg;
  } panels[] = {
      {"(a) MPI_Allreduce, Frontera, #nodes=16, PPN=56", "Frontera",
       coll::Collective::kAllreduce, 16, 56, 1u << 20},
      {"(b) MPI_Bcast,     Frontera, #nodes=16, PPN=56", "Frontera",
       coll::Collective::kBcast, 16, 56, 1u << 20},
      {"(c) MPI_Allreduce, MRI, #nodes=8, PPN=128", "MRI",
       coll::Collective::kAllreduce, 8, 128, 1u << 15},
      {"(d) MPI_Bcast,     MRI, #nodes=8, PPN=128", "MRI",
       coll::Collective::kBcast, 8, 128, 1u << 15},
  };
  for (const auto& panel : panels) {
    bench::print_comparison(panel.label, sim::cluster_by_name(panel.cluster),
                            sim::Topology{panel.nodes, panel.ppn},
                            panel.collective, fw, mvapich, panel.max_msg);
  }
  std::printf(
      "(extension: not in the paper's evaluation; shows the framework "
      "generalises to the collectives its future-work section targets)\n");
  return 0;
}
