// Ablation (DESIGN.md): does incorporating hardware features actually buy
// cross-cluster generalisation, and what does the paper's top-5 feature
// selection cost? Three variants are trained and scored on unseen clusters
// (the cluster-based split):
//  (1) MPI-specific features only (what prior ML tuners use),
//  (2) top-5 features by Gini importance (the paper's configuration),
//  (3) all 14 features.
#include <cstdio>
#include <numeric>
#include <set>

#include "bench_util.hpp"
#include "core/dataset_builder.hpp"

namespace {

using namespace pml;

double cluster_split_accuracy(const std::vector<core::TuningRecord>& records,
                              coll::Collective collective,
                              const std::vector<std::size_t>& columns) {
  const std::set<std::string> held_out = {"Frontera", "MRI", "Bebop", "Mayer",
                                          "Sierra"};
  std::vector<std::string> train_names;
  std::vector<std::string> test_names(held_out.begin(), held_out.end());
  for (const auto& c : sim::builtin_clusters()) {
    if (!held_out.contains(c.name)) train_names.push_back(c.name);
  }
  const auto data = core::to_ml_dataset(records, collective, columns);
  const auto train_rows = core::rows_in_clusters(records, train_names);
  const auto test_rows = core::rows_in_clusters(records, test_names);
  ml::RandomForest rf(core::TrainOptions{}.forest);
  Rng rng(11);
  rf.fit(data.subset(train_rows), rng);
  return ml::evaluate_accuracy(rf, data.subset(test_rows));
}

std::vector<std::size_t> top_k_columns(
    const std::vector<core::TuningRecord>& records,
    coll::Collective collective, std::size_t k) {
  const auto data = core::to_ml_dataset(records, collective);
  ml::RandomForest rf(core::TrainOptions{}.forest);
  Rng rng(5);
  rf.fit(data, rng);
  const auto imp = rf.feature_importances();
  std::vector<std::size_t> order(imp.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return imp[a] > imp[b]; });
  order.resize(k);
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace

int main() {
  std::printf(
      "== Ablation: hardware features and top-5 selection "
      "(cluster-based split accuracy on unseen clusters) ==\n\n");

  TextTable table({"Collective", "MPI-specific only (3)", "top-5 features",
                   "all 14 features"});
  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    const auto records =
        core::build_records(std::span(sim::builtin_clusters()), collective,
                            core::BuildOptions{});

    const std::vector<std::size_t> mpi_only = {0, 1, 2};
    const auto top5 = top_k_columns(records, collective, 5);
    std::vector<std::size_t> all(core::feature_count());
    std::iota(all.begin(), all.end(), 0u);

    std::string top5_names;
    for (const auto c : top5) {
      if (!top5_names.empty()) top5_names += ",";
      top5_names += core::feature_names()[c];
    }
    std::fprintf(stderr, "  top-5 for %s: %s\n",
                 coll::to_string(collective).c_str(), top5_names.c_str());

    table.add_row(
        {collective == coll::Collective::kAllgather ? "MPI_Allgather"
                                                    : "MPI_Alltoall",
         format_double(
             cluster_split_accuracy(records, collective, mpi_only) * 100.0,
             1) + "%",
         format_double(cluster_split_accuracy(records, collective, top5) *
                           100.0, 1) + "%",
         format_double(cluster_split_accuracy(records, collective, all) *
                           100.0, 1) + "%"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "(expectation: MPI-specific-only collapses on unseen clusters — the "
      "paper's motivation for integrating hardware features)\n");
  return 0;
}
