// Reproduces Fig. 10: cluster-based benchmark on MRI (AMD EPYC 7713 +
// HDR InfiniBand) — model trained with MRI (and Frontera) excluded,
// compared against the MVAPICH2 2.3.7 default at 8 nodes, PPN 128 and 64.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pml;
  std::printf(
      "== Fig. 10: PML vs MVAPICH2-2.3.7 default on MRI "
      "(leave-cluster-out) ==\n\n");

  const auto& mri = sim::cluster_by_name("MRI");
  auto fw = core::PmlFramework::train(bench::clusters_except({"Frontera", "MRI"}),
                                      bench::default_train_options());
  core::MvapichDefaultSelector mvapich;

  const struct {
    const char* label;
    coll::Collective collective;
    int ppn;
  } panels[] = {
      {"(a) MPI_Allgather, #nodes=8, PPN=128", coll::Collective::kAllgather, 128},
      {"(b) MPI_Alltoall,  #nodes=8, PPN=128", coll::Collective::kAlltoall, 128},
      {"(c) MPI_Allgather, #nodes=8, PPN=64", coll::Collective::kAllgather, 64},
      {"(d) MPI_Alltoall,  #nodes=8, PPN=64", coll::Collective::kAlltoall, 64},
  };
  // MRI's sweep stops at 32 KiB (16 sizes, Table I).
  for (const auto& panel : panels) {
    bench::print_comparison(panel.label, mri, sim::Topology{8, panel.ppn},
                            panel.collective, fw, mvapich, 1u << 15);
  }
  std::printf(
      "(paper: up to +150.1%%/+154.5%% at individual sizes; the default "
      "static table lacks optimization for this cluster)\n");
  return 0;
}
