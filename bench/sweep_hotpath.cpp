// Micro-benchmarks of the dataset-sweep and simulator hot paths, with a
// heap-allocation counter wired through global operator new so the
// zero-allocation claim of the timing-only collective path is *measured*,
// not asserted. Emits machine-readable JSON via the standard
// google-benchmark flags; the repo's recorded trajectory lives in
// BENCH_sweep_hotpath.json:
//
//   build/bench/sweep_hotpath --benchmark_out_format=json
//                             --benchmark_out=BENCH_sweep_hotpath.json
//
// The headline series tracked across PRs: BM_BuildRecords/threads:1
// (grid cells/sec), BM_TimingOnlyCollective/* (allocs_per_iter == 0 for the
// allocation-free schedules), and BM_EngineEventRate (posted requests/sec
// through reset()-reused engine storage).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "coll/allgather.hpp"
#include "coll/runner.hpp"
#include "core/dataset_builder.hpp"
#include "sim/comm.hpp"
#include "sim/fault.hpp"

// ---- allocation counting ----------------------------------------------------
// Counts every operator-new in the process; benchmarks snapshot the counter
// around the timed loop and report allocations per iteration.
//
// GCC's -Wmismatched-new-delete pairs the replaced operator new below with
// the replaced operator delete when inlining both into callers and flags the
// malloc/free it sees inside as mismatched; both sides of the replacement
// use malloc/free, so the pairing is correct.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pml;

// ---- dataset sweep ----------------------------------------------------------
// The full Table-I grid for one collective. threads:1 is the serial
// baseline; threads:0 uses every hardware thread. Records are bit-identical
// either way (tests/core/dataset_builder_test.cpp pins that).

void BM_BuildRecords(benchmark::State& state) {
  const auto clusters = bench::clusters_except({});
  core::BuildOptions options;
  options.threads = static_cast<int>(state.range(0));
  std::size_t cells = 0;
  for (auto _ : state) {
    const auto records =
        core::build_records(clusters, coll::Collective::kAllgather, options);
    cells = records.size();
    benchmark::DoNotOptimize(records.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["grid_cells"] = static_cast<double>(cells);
}
BENCHMARK(BM_BuildRecords)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

// ---- timing-only collective invocations -------------------------------------
// One run_collective(copy_data=false) per iteration. After the warm-up call
// primes the per-thread engine + arenas, the schedules without internal
// staging buffers (ring allgather, pairwise alltoall, binomial bcast,
// recursive-doubling allreduce) must run allocation-free.

void bm_timing_only(benchmark::State& state, coll::Algorithm algorithm,
                    int nodes, int ppn, std::uint64_t bytes,
                    const sim::FaultPlan& faults = {}) {
  const auto& cluster = sim::cluster_by_name("Frontera");
  const sim::Topology topo{nodes, ppn};
  sim::RunOptions opts{sim::PayloadMode::kTimingOnly, 0.015, 2024};
  opts.faults = faults;
  // Warm the thread_local engine and arenas so the loop measures steady
  // state.
  benchmark::DoNotOptimize(
      coll::run_collective(cluster, topo, algorithm, bytes, opts).seconds);
  const std::size_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll::run_collective(cluster, topo, algorithm, bytes, opts).seconds);
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(g_alloc_count.load() - allocs_before),
      benchmark::Counter::kAvgIterations);
}

void BM_TimingOnlyAllgatherRing(benchmark::State& state) {
  bm_timing_only(state, coll::Algorithm::kAgRing, 4, 8, 4096);
}
BENCHMARK(BM_TimingOnlyAllgatherRing)->Unit(benchmark::kMicrosecond);

void BM_TimingOnlyAlltoallPairwise(benchmark::State& state) {
  bm_timing_only(state, coll::Algorithm::kAaPairwise, 4, 8, 4096);
}
BENCHMARK(BM_TimingOnlyAlltoallPairwise)->Unit(benchmark::kMicrosecond);

void BM_TimingOnlyAllreduceRd(benchmark::State& state) {
  bm_timing_only(state, coll::Algorithm::kArRecursiveDoubling, 4, 8, 65536);
}
BENCHMARK(BM_TimingOnlyAllreduceRd)->Unit(benchmark::kMicrosecond);

void BM_TimingOnlyBcastBinomial(benchmark::State& state) {
  bm_timing_only(state, coll::Algorithm::kBcBinomial, 4, 8, 65536);
}
BENCHMARK(BM_TimingOnlyBcastBinomial)->Unit(benchmark::kMicrosecond);

// ---- fault-injection hot-path cost ------------------------------------------
// The disabled-fault path (an empty FaultPlan) must stay allocation-free:
// fault support costs one predictable branch, nothing more. This one is a
// hard gate — the smoke run fails if the steady state ever allocates. The
// faulted variant quantifies the full-plan cost for comparison.

void BM_TimingOnlyFaultsDisabled(benchmark::State& state) {
  const auto& cluster = sim::cluster_by_name("Frontera");
  const sim::Topology topo{4, 8};
  sim::RunOptions opts{sim::PayloadMode::kTimingOnly, 0.015, 2024};
  opts.faults = sim::FaultPlan{};  // explicit empty plan, not the default
  // A run's coroutine frames are recycled at the *next* reset, so the frame
  // pool's free lists keep growing for a few cycles; run several warm-up
  // rounds to reach the allocation-free steady state before snapshotting.
  for (int i = 0; i < 4; ++i) {
    benchmark::DoNotOptimize(
        coll::run_collective(cluster, topo, coll::Algorithm::kAgRing, 4096,
                             opts)
            .seconds);
  }
  const std::size_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll::run_collective(cluster, topo, coll::Algorithm::kAgRing, 4096,
                             opts)
            .seconds);
  }
  const std::size_t allocs = g_alloc_count.load() - allocs_before;
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  if (allocs != 0) {
    state.SkipWithError(
        ("disabled-fault hot path allocated (" + std::to_string(allocs) +
         " over " + std::to_string(state.iterations()) +
         " iters); empty FaultPlan must be free")
            .c_str());
  }
}
BENCHMARK(BM_TimingOnlyFaultsDisabled)->Unit(benchmark::kMicrosecond);

void BM_TimingOnlyFaulted(benchmark::State& state) {
  sim::FaultPlan plan;
  plan.link_degradations.push_back({0, 0.5, 1e-6});
  plan.stragglers.push_back({1, 2.0});
  plan.flaps.push_back({2, 1e-5, 1e-4});
  bm_timing_only(state, coll::Algorithm::kAgRing, 4, 8, 4096, plan);
}
BENCHMARK(BM_TimingOnlyFaulted)->Unit(benchmark::kMicrosecond);

// ---- raw engine event rate --------------------------------------------------
// Drives the engine directly through reset() cycles; items/sec is posted
// requests per second, the engine-layer throughput number.

void BM_EngineEventRate(benchmark::State& state) {
  const auto& cluster = sim::cluster_by_name("Frontera");
  const sim::Topology topo{4, 8};
  const sim::SimOptions opts{0.015, 2024, sim::PayloadMode::kTimingOnly};
  const int p = topo.world_size();
  std::vector<std::byte> recv_arena(static_cast<std::size_t>(p) *
                                    static_cast<std::size_t>(p) * 4096);
  sim::Engine engine(cluster, topo, opts);
  std::size_t requests = 0;
  for (auto _ : state) {
    engine.reset(cluster, topo, opts);
    engine.run([&](int rank) -> sim::RankTask {
      sim::Comm comm(engine, rank);
      const std::span<std::byte> recv(
          recv_arena.data() +
              static_cast<std::size_t>(rank) * static_cast<std::size_t>(p) *
                  4096,
          static_cast<std::size_t>(p) * 4096);
      return coll::run_allgather(
          coll::Algorithm::kAgRing, comm,
          std::span<const std::byte>(recv.data(), 4096), recv);
    });
    requests = engine.posted_requests();
    benchmark::DoNotOptimize(engine.elapsed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["requests_per_run"] = static_cast<double>(requests);
}
BENCHMARK(BM_EngineEventRate)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
