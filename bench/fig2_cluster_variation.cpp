// Reproduces Fig. 2: MPI_Alltoall algorithm runtimes on 2 nodes x 16 PPN
// differ across clusters (Frontera vs MRI) — the paper's motivation that
// empirical knowledge does not transfer between machines.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pml;
  std::printf(
      "== Fig. 2: MPI_Alltoall algorithm runtimes, 2 nodes x 16 PPN ==\n\n");

  const sim::Topology topo{2, 16};
  const auto& algorithms = coll::algorithms_for(coll::Collective::kAlltoall);

  for (const char* name : {"Frontera", "MRI"}) {
    const auto& cluster = sim::cluster_by_name(name);
    const sim::NetworkModel model(cluster, topo);

    std::vector<std::string> header = {"msg size"};
    for (const auto a : algorithms) header.push_back(coll::display_name(a));
    header.push_back("best");
    TextTable table(std::move(header));
    table.set_title(std::string(name) + " (" + cluster.processor + ", " +
                    sim::to_string(cluster.interconnect) + ")");

    for (std::uint64_t msg = 1; msg <= 16 * 1024; msg <<= 1) {
      std::vector<std::string> row = {format_bytes(msg)};
      double lo = 1e300;
      std::size_t best = 0;
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        const double t = coll::analytic_cost(model, algorithms[a], msg);
        row.push_back(format_time(t));
        if (t < lo) {
          lo = t;
          best = a;
        }
      }
      row.push_back(coll::display_name(algorithms[best]));
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "(paper: Bruck wins the small-message range on Frontera but degrades "
      "on MRI, where Scatter_Dest takes over around 256-512 B)\n");
  return 0;
}
