// Reproduces Table III: Random Forest classification accuracy under the
// three train/test protocols of §V-D — random 70/30, cluster-based
// (unseen clusters), and node-based (train small node counts, test large).
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "core/dataset_builder.hpp"

namespace {

using namespace pml;

double fit_and_score(const ml::Dataset& train, const ml::Dataset& test) {
  ml::RandomForest rf(core::TrainOptions{}.forest);
  Rng rng(11);
  rf.fit(train, rng);
  return ml::evaluate_accuracy(rf, test);
}

}  // namespace

int main() {
  std::printf("== Table III: Classification accuracy by split protocol ==\n\n");

  // ~70% of clusters for the cluster-based split (13 of 18), chosen to
  // leave out a spread of architectures including the evaluation pair.
  const std::set<std::string> test_clusters = {"Frontera", "MRI", "Bebop",
                                               "Mayer", "Sierra"};

  TextTable table({"Collective", "Random Test Accuracy",
                   "Cluster Test Accuracy", "Node Test Accuracy"});
  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    const auto records =
        core::build_records(std::span(sim::builtin_clusters()), collective,
                            core::BuildOptions{});
    const auto data = core::to_ml_dataset(records, collective);

    // Random 70/30.
    Rng split_rng(42);
    const auto random = ml::random_split(data.size(), 0.7, split_rng);
    const double acc_random = fit_and_score(data.subset(random.train),
                                            data.subset(random.test));

    // Cluster-based: train on clusters not in the held-out set.
    std::vector<std::string> train_names;
    std::vector<std::string> test_names(test_clusters.begin(),
                                        test_clusters.end());
    for (const auto& c : sim::builtin_clusters()) {
      if (!test_clusters.contains(c.name)) train_names.push_back(c.name);
    }
    const auto cluster_train_rows = core::rows_in_clusters(records, train_names);
    const auto cluster_test_rows = core::rows_in_clusters(records, test_names);
    const double acc_cluster = fit_and_score(data.subset(cluster_train_rows),
                                             data.subset(cluster_test_rows));

    // Node-based: train on <= 4 nodes, test on > 4 nodes.
    const auto node_train_rows = core::rows_with_nodes_at_most(records, 4);
    const auto node_test_rows = core::rows_with_nodes_above(records, 4);
    const double acc_node = fit_and_score(data.subset(node_train_rows),
                                          data.subset(node_test_rows));

    table.add_row({collective == coll::Collective::kAllgather
                       ? "MPI_Allgather"
                       : "MPI_Alltoall",
                   format_double(acc_random * 100.0, 1) + "%",
                   format_double(acc_cluster * 100.0, 1) + "%",
                   format_double(acc_node * 100.0, 1) + "%"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "(paper: Allgather 88.8 / 84.4 / 79.8; Alltoall 89.9 / 82.7 / 86.7 — "
      "random > cluster, node split hardest for allgather)\n");
  return 0;
}
