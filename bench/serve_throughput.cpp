// Serve-layer throughput and latency benchmarks, with a hard gate in
// main() on the cached single-query path: the daemon's steady state must
// clear 100k selections/sec/core with a sub-millisecond p99, or the gate
// fails the run (the smoke ctest entry therefore catches throughput
// rot, not just bit-rot). Emits machine-readable JSON via the standard
// google-benchmark flags; the repo's recorded trajectory lives in
// BENCH_serve_throughput.json:
//
//   build/bench/serve_throughput --benchmark_out_format=json
//                                --benchmark_out=BENCH_serve_throughput.json
//
// Headline series: BM_ServeCachedSelect (full protocol round trip,
// JSON in / JSON out, cache hit), BM_ServeCacheGet (the sharded LRU
// probe alone), BM_ServeDegradedSelect (heuristic bottom rung), and
// BM_ServeTableHit (pre-serialized table replies). p50_ns/p99_ns
// counters on the cached-select series record the per-request latency
// distribution measured over the benchmark's own iterations.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/artifact.hpp"
#include "core/serve.hpp"

// Under a sanitizer the absolute throughput targets are meaningless
// (TSan alone is a 10-20x slowdown), so the gate downgrades to
// informational: the numbers still print, but only a native build can
// fail on them. Sanitized CI jobs run this smoke for the race/UB
// coverage of the hot path, not for wall-clock.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PML_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PML_BENCH_SANITIZED 1
#endif
#endif
#ifndef PML_BENCH_SANITIZED
#define PML_BENCH_SANITIZED 0
#endif

namespace {

using namespace pml;

core::PmlFramework& trained() {
  static core::PmlFramework fw = [] {
    core::TrainOptions options;
    options.forest.n_trees = 8;
    const std::vector<sim::ClusterSpec> clusters = {
        sim::cluster_by_name("RI"), sim::cluster_by_name("Rome")};
    return core::PmlFramework::train(clusters, options);
  }();
  return fw;
}

/// A ready-to-serve engine with the MRI table already compiled and cached
/// (one warm-up request with wait=true), backed by a real model artifact
/// in a temp dir.
core::ServeEngine& warm_engine() {
  static std::unique_ptr<core::ServeEngine> engine = [] {
    const auto dir =
        std::filesystem::temp_directory_path() / "pml_serve_bench";
    std::filesystem::create_directories(dir);
    const std::string model = (dir / "model.json").string();
    write_artifact(model, trained().to_json(), "model");
    core::ServeOptions options;
    options.model_path = model;
    options.compile =
        core::CompileOptions::sweep({2, 4, 8}, {16, 32}, {1024, 65536});
    auto e = std::make_unique<core::ServeEngine>(std::move(options));
    e->handle_line(R"({"op":"table","cluster":"MRI","wait":true})");
    return e;
  }();
  return *engine;
}

const std::string kCachedSelect =
    R"({"op":"select","cluster":"MRI","collective":"allgather",)"
    R"("nodes":4,"ppn":16,"msg_bytes":65536})";

/// Full protocol round trip on the cached hot path: parse request JSON,
/// shard-probe the LRU, table lookup, serialize the reply.
void BM_ServeCachedSelect(benchmark::State& state) {
  core::ServeEngine& engine = warm_engine();
  std::vector<std::uint64_t> latencies;
  latencies.reserve(1 << 16);
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(engine.handle_line(kCachedSelect));
    const auto end = std::chrono::steady_clock::now();
    if (latencies.size() < latencies.capacity()) {
      latencies.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
              .count()));
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (!latencies.empty()) {
    const auto nth = [&latencies](double q) {
      const std::size_t i = static_cast<std::size_t>(
          q * static_cast<double>(latencies.size() - 1) + 0.5);
      std::nth_element(latencies.begin(),
                       latencies.begin() + static_cast<std::ptrdiff_t>(i),
                       latencies.end());
      return static_cast<double>(latencies[i]);
    };
    state.counters["p50_ns"] = nth(0.50);
    state.counters["p99_ns"] = nth(0.99);
  }
}
BENCHMARK(BM_ServeCachedSelect);

/// The sharded LRU probe alone (key hash + shard lock + list splice).
void BM_ServeCacheGet(benchmark::State& state) {
  core::ServeCache cache(4, 8);
  auto entry = std::make_shared<core::ServedTable>();
  entry->json = "{}";
  cache.put("model/fingerprint/sweep", entry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get("model/fingerprint/sweep"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeCacheGet);

/// Bottom rung of the ladder: no model, heuristic answer per request.
void BM_ServeDegradedSelect(benchmark::State& state) {
  static core::ServeEngine* engine = [] {
    core::ServeOptions options;  // no model: heuristic-only serving
    options.compile = core::CompileOptions::sweep({2, 4}, {16}, {1024});
    return new core::ServeEngine(std::move(options));
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->handle_line(kCachedSelect));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeDegradedSelect);

/// Cached "table" replies: the pre-serialized JSON is spliced, not
/// re-serialized, so cost is dominated by the reply copy.
void BM_ServeTableHit(benchmark::State& state) {
  core::ServeEngine& engine = warm_engine();
  const std::string request = R"({"op":"table","cluster":"MRI"})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.handle_line(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeTableHit);

/// Hard gate: cached selections/sec/core and p99 latency, measured
/// standalone (outside google-benchmark timing). Thresholds are the
/// ISSUE targets with headroom for noisy CI machines; the recorded
/// BENCH_serve_throughput.json baseline documents the real numbers.
int verify_cached_hot_path() {
  core::ServeEngine& engine = warm_engine();
  constexpr int kWarmup = 2000;
  constexpr int kOps = 20000;
  for (int i = 0; i < kWarmup; ++i) engine.handle_line(kCachedSelect);

  std::vector<std::uint64_t> latencies;
  latencies.reserve(kOps);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    engine.handle_line(kCachedSelect);
    const auto t1 = std::chrono::steady_clock::now();
    latencies.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();
  const double per_second = static_cast<double>(kOps) / seconds;
  const std::size_t p99_index = (latencies.size() * 99) / 100;
  std::nth_element(latencies.begin(),
                   latencies.begin() + static_cast<std::ptrdiff_t>(p99_index),
                   latencies.end());
  const double p99_ms = static_cast<double>(latencies[p99_index]) / 1e6;

  std::printf("serve_throughput gate: %.0f cached selections/sec/core, "
              "p99 = %.4f ms (targets: >= 100k/sec, < 1 ms)\n",
              per_second, p99_ms);
  if (PML_BENCH_SANITIZED) {
    std::printf("sanitized build: gate informational, not enforced\n");
    return 0;
  }
  if (per_second < 100000.0) {
    std::fprintf(stderr,
                 "FAIL: cached select throughput %.0f/sec below 100k/sec\n",
                 per_second);
    return 1;
  }
  if (p99_ms >= 1.0) {
    std::fprintf(stderr, "FAIL: cached select p99 %.4f ms >= 1 ms\n", p99_ms);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (const int rc = verify_cached_hot_path(); rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
