// Reproduces Fig. 1 and Fig. 7: startup core-hours of offline
// micro-benchmarking vs ACCLAiM vs the proposed pre-trained framework, as
// the evaluated node count grows (TACC Frontera, MPI_Allgather).
//
// The PML column is the *actually measured* wall time of a full tuning
// table inference sweep on one process, exactly as the deployed framework
// would run at MPI-library compile time.
#include <cstdio>

#include "bench_util.hpp"
#include "core/overhead.hpp"

int main() {
  using namespace pml;
  std::printf(
      "== Fig. 1 / Fig. 7: Startup overhead (core hours), Frontera, "
      "MPI_Allgather ==\n\n");

  const auto& frontera = sim::cluster_by_name("Frontera");
  const auto sizes = sim::power_of_two_sizes(21);

  // Train once (offline stage, not counted: it ships with the library),
  // then measure the one-time per-cluster inference sweep.
  auto fw = core::PmlFramework::train(bench::clusters_except({"Frontera"}),
                                      bench::default_train_options());
  const std::vector<int> sweep_nodes = {1, 2, 4, 8, 16};
  const std::vector<int> sweep_ppns = {28, 56};
  (void)fw.compile_for(frontera, core::CompileOptions::sweep(sweep_nodes, sweep_ppns, sizes));
  // The deployed step also runs the feature-extraction script
  // (lscpu/lspci/ibstat) and loads the shipped model bundle — budget the
  // paper's "less than a second" for that on top of the measured sweep.
  constexpr double kExtractionSeconds = 0.5;
  const double inference_s = fw.inference_seconds() + kExtractionSeconds;

  TextTable table({"#nodes", "procs (ppn=56)", "micro-benchmark (core-h)",
                   "ACCLAiM (core-h)", "PML-MPI (core-h)",
                   "PML speedup vs micro", "PML speedup vs ACCLAiM"});
  const int ppn = 56;
  for (const int nodes : {2, 8, 32, 128, 512, 2048, 8192}) {
    const double micro = core::microbenchmark_core_hours(
        frontera, coll::Collective::kAllgather, nodes, ppn, sizes);
    const double acclaim = core::acclaim_core_hours(nodes, ppn);
    const double pml = core::pml_core_hours(inference_s);
    char micro_s[32], acclaim_s[32], pml_s[32], spm[32], spa[32];
    std::snprintf(micro_s, sizeof micro_s, "%.3e", micro);
    std::snprintf(acclaim_s, sizeof acclaim_s, "%.3e", acclaim);
    std::snprintf(pml_s, sizeof pml_s, "%.3e", pml);
    std::snprintf(spm, sizeof spm, "%.1e x", micro / pml);
    std::snprintf(spa, sizeof spa, "%.1e x", acclaim / pml);
    table.add_row({std::to_string(nodes), std::to_string(nodes * ppn),
                   micro_s, acclaim_s, pml_s, spm, spa});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "PML one-time cost: %s measured inference sweep + %.1f s budgeted "
      "feature extraction/model load, on a single process\n",
      format_time(fw.inference_seconds()).c_str(), kExtractionSeconds);
  std::printf(
      "(paper: ~1e6x over micro-benchmarking at 32 nodes, ~1e4x over "
      "ACCLAiM at 128 nodes; PML stays near-constant)\n");
  return 0;
}
