// Reproduces Fig. 13: end-to-end application runtime of the Gromacs
// (BenchMEM) and MiniFE proxies on Frontera under three tuning strategies:
// the proposed framework, the MVAPICH2 2.3.7 default, and random
// selection, across a strong-scaling process sweep.
#include <cmath>
#include <cstdio>

#include "apps/proxies.hpp"
#include "bench_util.hpp"

int main() {
  using namespace pml;
  std::printf("== Fig. 13: Application runtime on Frontera ==\n\n");

  const auto& frontera = sim::cluster_by_name("Frontera");
  auto fw = core::PmlFramework::train(bench::clusters_except({"Frontera", "MRI"}),
                                      bench::default_train_options());
  core::MvapichDefaultSelector mvapich;
  core::RandomSelector random_sel(23);

  const struct {
    const char* app;
    bool gromacs;
  } apps_under_test[] = {{"Gromacs (BenchMEM proxy)", true},
                         {"MiniFE (CG proxy)", false}};

  for (const auto& app : apps_under_test) {
    TextTable table({"#Processes", "PML-MPI", "MVAPICH default", "Random",
                     "PML vs default", "PML vs random"});
    table.set_title(app.app);
    double geo_def = 0.0;
    double geo_rand = 0.0;
    int n = 0;
    for (const int procs : {28, 56, 112, 224, 448}) {
      const int ppn = std::min(procs, 56);
      const sim::Topology topo{procs / ppn, ppn};
      auto run = [&](core::Selector& sel) {
        return app.gromacs
                   ? apps::run_gromacs_proxy(frontera, topo, sel).total_seconds
                   : apps::run_minife_proxy(frontera, topo, sel).total_seconds;
      };
      const double t_pml = run(fw);
      const double t_def = run(mvapich);
      // Random re-rolls per collective call; average several trials.
      double t_rand = 0.0;
      for (int trial = 0; trial < 10; ++trial) t_rand += run(random_sel);
      t_rand /= 10.0;

      geo_def += std::log(t_def / t_pml);
      geo_rand += std::log(t_rand / t_pml);
      ++n;
      table.add_row({std::to_string(procs), format_time(t_pml),
                     format_time(t_def), format_time(t_rand),
                     bench::percent_faster(t_def, t_pml),
                     bench::percent_faster(t_rand, t_pml)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("Geomean: %+.2f%% vs default, %+.2f%% vs random\n\n",
                (std::exp(geo_def / n) - 1.0) * 100.0,
                (std::exp(geo_rand / n) - 1.0) * 100.0);
  }
  std::printf(
      "(paper: Gromacs +2.90%% vs default, +19.39%% vs random; MiniFE "
      "+4.43%% vs default, +20.66%% vs random; scalability is lost around "
      "224 processes)\n");
  return 0;
}
