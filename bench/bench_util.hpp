// Shared helpers for the experiment-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper. The
// helpers here centralise the evaluation protocol:
//  - leave-cluster-out training (the paper excludes the cluster under
//    evaluation from the training set, §VII-C),
//  - noisy point evaluation where every algorithm's time at a benchmark
//    point is drawn once and shared across selectors (so two selectors
//    picking the same algorithm see the same "network conditions", as the
//    paper notes about identical choices),
//  - percentage / ratio formatting.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "coll/cost.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/framework.hpp"
#include "core/selectors.hpp"
#include "ml/metrics.hpp"
#include "sim/network.hpp"

namespace pml::bench {

/// All Table-I clusters except those named (leave-cluster-out protocol).
inline std::vector<sim::ClusterSpec> clusters_except(
    std::initializer_list<const char*> excluded) {
  std::vector<sim::ClusterSpec> out;
  for (const auto& c : sim::builtin_clusters()) {
    bool skip = false;
    for (const char* name : excluded) skip = skip || c.name == name;
    if (!skip) out.push_back(c);
  }
  return out;
}

/// Per-candidate noisy times at one benchmark point (shared across
/// selectors). Index matches coll::selection_space(collective) — the flat
/// prefix draws its jitter first, so flat times are unchanged from the v1
/// label space; +inf = invalid at this topology.
inline std::vector<double> point_times(const sim::ClusterSpec& cluster,
                                       sim::Topology topo,
                                       coll::Collective collective,
                                       std::uint64_t msg_bytes,
                                       std::uint64_t seed,
                                       double noise_sigma = 0.015,
                                       int iterations = 3) {
  const sim::NetworkModel model(cluster, topo);
  const auto& space = coll::selection_space(collective);
  std::uint64_t material = seed;
  material ^= msg_bytes * std::uint64_t{0x9e3779b97f4a7c15ULL};
  material ^= static_cast<std::uint64_t>(topo.nodes) << 32;
  material ^= static_cast<std::uint64_t>(topo.ppn);
  Rng rng(splitmix64(material));
  std::vector<double> times(space.size(),
                            std::numeric_limits<double>::infinity());
  for (std::size_t a = 0; a < space.size(); ++a) {
    if (!coll::selection_supports(space[a], topo)) continue;
    times[a] = space[a].hierarchical()
                   ? coll::measured_cost(cluster, topo, space[a], msg_bytes,
                                         iterations, rng, noise_sigma)
                   : coll::measured_cost(model, space[a].algorithm, msg_bytes,
                                         iterations, rng, noise_sigma);
  }
  return times;
}

/// Time of the selection a selector picks, read from shared point times.
inline double selector_time(core::Selector& selector,
                            const sim::ClusterSpec& cluster,
                            sim::Topology topo, coll::Collective collective,
                            std::uint64_t msg_bytes,
                            const std::vector<double>& times) {
  const coll::Selection choice =
      selector.select(collective, cluster, topo, msg_bytes);
  const auto& space = coll::selection_space(collective);
  for (std::size_t a = 0; a < space.size(); ++a) {
    if (space[a] == choice) return times[a];
  }
  throw ConfigError("selector returned an unknown selection");
}

/// "+36.6%" / "-5.6%" style percentage of baseline vs candidate.
inline std::string percent_faster(double baseline, double candidate) {
  const double pct = (baseline / candidate - 1.0) * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", pct);
  return buf;
}

/// Geometric-mean ratio of baseline/candidate over a series.
inline double geomean_ratio(const std::vector<double>& baseline,
                            const std::vector<double>& candidate) {
  if (baseline.size() != candidate.size() || baseline.empty()) {
    throw ConfigError("geomean_ratio: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    acc += std::log(baseline[i] / candidate[i]);
  }
  return std::exp(acc / static_cast<double>(baseline.size()));
}

/// The standard PML training configuration used across benches.
inline core::TrainOptions default_train_options() {
  return core::TrainOptions{};
}

/// Print a per-message-size comparison of two selectors on one
/// (cluster, topology, collective) series and return the geometric-mean
/// baseline/candidate ratio (>1 means the candidate is faster).
inline double print_comparison(const std::string& title,
                               const sim::ClusterSpec& cluster,
                               sim::Topology topo,
                               coll::Collective collective,
                               core::Selector& candidate,
                               core::Selector& baseline,
                               std::uint64_t max_msg = 1u << 20,
                               std::uint64_t seed = 17) {
  TextTable table({"msg size", candidate.name(), "time", baseline.name(),
                   "time", "speedup"});
  table.set_title(title);
  std::vector<double> cand_times;
  std::vector<double> base_times;
  for (std::uint64_t msg = 1; msg <= max_msg; msg <<= 1) {
    const auto times = point_times(cluster, topo, collective, msg, seed);
    const coll::Selection ca = candidate.select(collective, cluster, topo, msg);
    const coll::Selection ba = baseline.select(collective, cluster, topo, msg);
    const double ct = selector_time(candidate, cluster, topo, collective, msg, times);
    const double bt = selector_time(baseline, cluster, topo, collective, msg, times);
    cand_times.push_back(ct);
    base_times.push_back(bt);
    table.add_row({format_bytes(msg), ca.encode(), format_time(ct),
                   ba.encode(), format_time(bt),
                   percent_faster(bt, ct)});
  }
  const double geo = geomean_ratio(base_times, cand_times);
  std::printf("%s", table.str().c_str());
  std::printf("Geomean speedup of %s over %s: %+.1f%%\n\n",
              candidate.name().c_str(), baseline.name().c_str(),
              (geo - 1.0) * 100.0);
  return geo;
}

}  // namespace pml::bench
