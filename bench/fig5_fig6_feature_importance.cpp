// Reproduces Fig. 5 and Fig. 6: Gini-impurity feature importances of the
// Random Forest for MPI_Allgather and MPI_Alltoall. The paper finds
// MPI-specific features (message size) dominant, with L3 cache size
// mattering for allgather and interconnect speed/width for alltoall.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_util.hpp"

int main() {
  using namespace pml;
  std::printf(
      "== Fig. 5 / Fig. 6: Feature importance (Gini impurity decrease) "
      "==\n\n");

  auto fw = core::PmlFramework::train(
      std::span<const sim::ClusterSpec>(sim::builtin_clusters()),
      bench::default_train_options());

  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    const auto importances = fw.full_feature_importances(collective);
    std::vector<std::size_t> order(importances.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return importances[a] > importances[b];
    });

    TextTable table({"rank", "feature", "importance", "bar"});
    table.set_title("MPI_" + std::string(collective ==
                                                 coll::Collective::kAllgather
                                             ? "Allgather"
                                             : "Alltoall") +
                    " (Fig. " +
                    (collective == coll::Collective::kAllgather ? "5" : "6") +
                    ")");
    for (std::size_t r = 0; r < order.size(); ++r) {
      const std::size_t f = order[r];
      const int bar_len =
          static_cast<int>(importances[f] * 60.0 + 0.5);
      table.add_row({std::to_string(r + 1), core::feature_names()[f],
                     format_double(importances[f], 4),
                     std::string(static_cast<std::size_t>(bar_len), '#')});
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "(paper: msg_size dominates both; l3_cache_mb ranks high for "
      "Allgather, hca link speed/width for Alltoall)\n");
  return 0;
}
