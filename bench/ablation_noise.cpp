// Ablation (DESIGN.md): sensitivity of model accuracy to measurement
// noise. The paper acknowledges dynamic network effects as label noise
// (§III) and suppresses them by averaging iterations; this bench
// quantifies the accuracy floor as the per-measurement jitter grows.
#include <cstdio>

#include "bench_util.hpp"
#include "core/dataset_builder.hpp"

int main() {
  using namespace pml;
  std::printf(
      "== Ablation: random-split accuracy vs measurement noise (sigma of "
      "the per-run log-normal jitter; 5 averaged iterations) ==\n\n");

  TextTable table({"noise sigma", "Allgather accuracy", "Alltoall accuracy"});
  for (const double sigma : {0.0, 0.015, 0.03, 0.06, 0.12}) {
    std::vector<std::string> row = {format_double(sigma, 3)};
    for (const auto collective :
         {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
      core::BuildOptions build;
      build.noise_sigma = sigma;
      const auto records = core::build_records(
          std::span(sim::builtin_clusters()), collective, build);
      const auto data = core::to_ml_dataset(records, collective);
      Rng split_rng(42);
      const auto split = ml::random_split(data.size(), 0.7, split_rng);
      ml::RandomForest rf(core::TrainOptions{}.forest);
      Rng fit_rng(11);
      rf.fit(data.subset(split.train), fit_rng);
      row.push_back(
          format_double(
              ml::evaluate_accuracy(rf, data.subset(split.test)) * 100.0, 1) +
          "%");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "(noise turns near-tied algorithm pairs into coin-flip labels; the "
      "paper's ~89%% ceiling corresponds to its testbed's noise floor)\n");
  return 0;
}
