// Reproduces Fig. 12: node-based generalisation. The model is trained only
// on records with small node counts and evaluated at a larger count:
// MRI trained on {1,2,4} nodes and tested at 8; Frontera trained on
// {1,2,4,8} and tested at 16 (PPN = full subscription).
#include <cstdio>

#include "bench_util.hpp"
#include "core/dataset_builder.hpp"

namespace {

using namespace pml;

core::PmlFramework train_below(int max_nodes) {
  // Build the full multi-cluster dataset, then keep only small-node rows.
  const auto clusters = bench::clusters_except({"Frontera", "MRI"});
  const core::BuildOptions build;
  const auto ag =
      core::build_records(clusters, coll::Collective::kAllgather, build);
  const auto aa =
      core::build_records(clusters, coll::Collective::kAlltoall, build);
  const auto ag_rows = core::rows_with_nodes_at_most(ag, max_nodes);
  const auto aa_rows = core::rows_with_nodes_at_most(aa, max_nodes);
  std::vector<core::TuningRecord> ag_small;
  for (const auto r : ag_rows) ag_small.push_back(ag[r]);
  std::vector<core::TuningRecord> aa_small;
  for (const auto r : aa_rows) aa_small.push_back(aa[r]);
  return core::PmlFramework::train_on_records(ag_small, aa_small,
                                              bench::default_train_options());
}

}  // namespace

int main() {
  std::printf(
      "== Fig. 12: Node-based generalisation vs MVAPICH2-2.3.7 default "
      "==\n\n");
  core::MvapichDefaultSelector mvapich;

  {
    auto fw = train_below(4);  // MRI: train nodes {1,2,4}, test 8
    const auto& mri = sim::cluster_by_name("MRI");
    bench::print_comparison("(a) MPI_Allgather, MRI, #nodes=8, PPN=128", mri,
                            sim::Topology{8, 128},
                            coll::Collective::kAllgather, fw, mvapich,
                            1u << 15);
    bench::print_comparison("(b) MPI_Alltoall,  MRI, #nodes=8, PPN=128", mri,
                            sim::Topology{8, 128}, coll::Collective::kAlltoall,
                            fw, mvapich, 1u << 15);
  }
  {
    auto fw = train_below(8);  // Frontera: train nodes {1,2,4,8}, test 16
    const auto& frontera = sim::cluster_by_name("Frontera");
    bench::print_comparison("(c) MPI_Allgather, Frontera, #nodes=16, PPN=56",
                            frontera, sim::Topology{16, 56},
                            coll::Collective::kAllgather, fw, mvapich);
    bench::print_comparison("(d) MPI_Alltoall,  Frontera, #nodes=16, PPN=56",
                            frontera, sim::Topology{16, 56},
                            coll::Collective::kAlltoall, fw, mvapich);
  }
  std::printf(
      "(paper: +74.1%% at 1K Allgather / +58.6%%,+49.6%% at 16K,32K "
      "Alltoall on MRI; +13.2%%,+43.5%% at 2K,4K on Frontera)\n");
  return 0;
}
