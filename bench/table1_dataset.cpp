// Reproduces Table I: the dataset overview — one row per cluster with its
// processor, interconnect, sweep dimensions, and sample count.
#include <cstdio>

#include "bench_util.hpp"
#include "core/dataset_builder.hpp"

int main() {
  using namespace pml;
  std::printf("== Table I: Dataset Overview ==\n\n");

  TextTable table({"Cluster", "Processor", "Interconnect", "#nodes", "#ppn",
                   "#msg size", "#samples"});
  std::size_t total = 0;
  for (const auto& cluster : sim::builtin_clusters()) {
    const auto records = core::build_cluster_records(
        cluster, coll::Collective::kAllgather, core::BuildOptions{});
    total += records.size();
    table.add_row({cluster.name, cluster.processor,
                   sim::to_string(cluster.interconnect),
                   std::to_string(cluster.node_counts.size()),
                   std::to_string(cluster.ppn_values.size()),
                   std::to_string(cluster.message_sizes.size()),
                   std::to_string(records.size())});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Total records per collective: %zu (paper: over 9000)\n", total);
  return 0;
}
