// Engine-mode dataset-build pruning benchmarks, with a hard gate in
// main(): analytic top-k pruning must deliver >= 5x wall-clock speedup
// over exhaustive engine measurement on the reference grid while the
// pruned build agrees with the exhaustive labels on >= 99% of cells,
// and the epsilon-audit must report zero unrescued mispredictions (the
// smoke ctest entry therefore catches pruning-quality rot, not just
// bit-rot). Emits machine-readable JSON via the standard
// google-benchmark flags; the repo's recorded trajectory lives in
// BENCH_sweep_pruning.json:
//
//   build/bench/sweep_pruning --benchmark_out_format=json
//                             --benchmark_out=BENCH_sweep_pruning.json
//
// Headline series: BM_EngineBuildExhaustive (every valid algorithm on
// the event engine), BM_EngineBuildPruned (analytic top-3 + ε-sample),
// and BM_AnalyticBuild (the closed-form path, the floor the engine path
// is measured against). Counters record cells and measured evaluations
// per build.
//
// The reference grid derives from Frontera at p ∈ {32, 64}: large
// enough that the O(p²)-message alltoalls dominate exhaustive cost
// (which is what pruning removes), small enough that the analytic
// ranking provably contains the engine argmin (see
// tests/coll/topk_agreement_test.cpp — rank 3 first appears at p=128).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/dataset_builder.hpp"
#include "sim/hardware.hpp"

namespace {

using namespace pml;

/// Frontera-derived reference grid: 2 node counts x 1 ppn x 3 message
/// sizes x 2 collectives = 12 cells, world sizes 32 and 64.
std::vector<sim::ClusterSpec> reference_grid() {
  sim::ClusterSpec grid = sim::cluster_by_name("Frontera");
  grid.node_counts = {4, 8};
  grid.ppn_values = {8};
  grid.message_sizes = {64, 1024, 16384};
  return {grid};
}

constexpr int kPruneTopK = 3;
constexpr double kPruneEpsilon = 0.0625;

core::BuildOptions engine_options() {
  core::BuildOptions options;
  options.cost_source = core::CostSource::kEngine;
  options.prune_topk = 0;  // exhaustive unless overridden
  return options;
}

const std::vector<coll::Collective> kCollectives = {
    coll::Collective::kAllgather, coll::Collective::kAlltoall};

/// One full grid build over both collectives; returns records
/// concatenated in collective order and accumulates stats.
std::vector<core::TuningRecord> build_grid(const core::BuildOptions& options,
                                           core::BuildStats& stats) {
  const auto grid = reference_grid();
  std::vector<core::TuningRecord> records;
  for (const auto collective : kCollectives) {
    core::BuildStats one;
    auto part = core::build_records(grid, collective, options, one);
    records.insert(records.end(), part.begin(), part.end());
    stats.cells += one.cells;
    stats.measured_evals += one.measured_evals;
    stats.pruned_evals += one.pruned_evals;
    stats.epsilon_evals += one.epsilon_evals;
    stats.prune_mispredictions += one.prune_mispredictions;
  }
  return records;
}

void BM_EngineBuildExhaustive(benchmark::State& state) {
  for (auto _ : state) {
    core::BuildStats stats;
    benchmark::DoNotOptimize(build_grid(engine_options(), stats));
    state.counters["cells"] = static_cast<double>(stats.cells);
    state.counters["measured_evals"] =
        static_cast<double>(stats.measured_evals);
  }
}
BENCHMARK(BM_EngineBuildExhaustive)->Unit(benchmark::kMillisecond);

void BM_EngineBuildPruned(benchmark::State& state) {
  core::BuildOptions options = engine_options();
  options.prune_topk = kPruneTopK;
  options.prune_epsilon = kPruneEpsilon;
  for (auto _ : state) {
    core::BuildStats stats;
    benchmark::DoNotOptimize(build_grid(options, stats));
    state.counters["cells"] = static_cast<double>(stats.cells);
    state.counters["measured_evals"] =
        static_cast<double>(stats.measured_evals);
    state.counters["pruned_evals"] = static_cast<double>(stats.pruned_evals);
  }
}
BENCHMARK(BM_EngineBuildPruned)->Unit(benchmark::kMillisecond);

void BM_AnalyticBuild(benchmark::State& state) {
  core::BuildOptions options;  // defaults: analytic, no pruning involved
  for (auto _ : state) {
    core::BuildStats stats;
    benchmark::DoNotOptimize(build_grid(options, stats));
    state.counters["cells"] = static_cast<double>(stats.cells);
  }
}
BENCHMARK(BM_AnalyticBuild)->Unit(benchmark::kMillisecond);

/// Hard gate: pruned-vs-exhaustive wall clock, label agreement, and the
/// ε-audit, measured standalone (outside google-benchmark timing).
/// Thresholds are the ISSUE targets; the recorded
/// BENCH_sweep_pruning.json baseline documents the real numbers.
int verify_pruning_gate() {
  core::BuildOptions exhaustive = engine_options();
  core::BuildOptions pruned = exhaustive;
  pruned.prune_topk = kPruneTopK;
  pruned.prune_epsilon = kPruneEpsilon;
  core::BuildOptions audit = pruned;
  audit.prune_audit = true;

  using Clock = std::chrono::steady_clock;
  core::BuildStats exhaustive_stats;
  const auto t0 = Clock::now();
  const auto exhaustive_records = build_grid(exhaustive, exhaustive_stats);
  const auto t1 = Clock::now();
  core::BuildStats pruned_stats;
  const auto pruned_records = build_grid(pruned, pruned_stats);
  const auto t2 = Clock::now();
  core::BuildStats audit_stats;
  build_grid(audit, audit_stats);

  const double exhaustive_s = std::chrono::duration<double>(t1 - t0).count();
  const double pruned_s = std::chrono::duration<double>(t2 - t1).count();
  const double speedup = exhaustive_s / pruned_s;

  std::size_t agree = 0;
  for (std::size_t i = 0; i < exhaustive_records.size(); ++i) {
    agree += exhaustive_records[i].label == pruned_records[i].label;
  }
  const double agreement =
      static_cast<double>(agree) /
      static_cast<double>(exhaustive_records.size());

  std::printf(
      "sweep_pruning gate: %.2fx speedup (%.2fs exhaustive / %.2fs pruned, "
      "top-%d eps=%.4g), label agreement %zu/%zu = %.1f%%, audit "
      "mispredictions %llu/%llu cells (targets: >= 5x, >= 99%%, 0)\n",
      speedup, exhaustive_s, pruned_s, kPruneTopK, kPruneEpsilon, agree,
      exhaustive_records.size(), 100.0 * agreement,
      static_cast<unsigned long long>(audit_stats.prune_mispredictions),
      static_cast<unsigned long long>(audit_stats.cells));

  int rc = 0;
  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: pruning speedup %.2fx below 5x\n", speedup);
    rc = 1;
  }
  if (agreement < 0.99) {
    std::fprintf(stderr, "FAIL: label agreement %.4f below 0.99\n",
                 agreement);
    rc = 1;
  }
  if (audit_stats.prune_mispredictions != 0) {
    std::fprintf(stderr,
                 "FAIL: epsilon-audit found %llu mispredicted cells\n",
                 static_cast<unsigned long long>(
                     audit_stats.prune_mispredictions));
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (const int rc = verify_pruning_gate(); rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
