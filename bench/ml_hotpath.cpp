// Micro-benchmarks of the ML training and inference hot paths, with a
// heap-allocation counter wired through global operator new so the
// zero-allocation claim of the flattened inference path is *measured*, not
// asserted. Emits machine-readable JSON via the standard google-benchmark
// flags; the repo's recorded trajectory lives in BENCH_ml_hotpath.json:
//
//   build/bench/ml_hotpath --benchmark_out_format=json
//                          --benchmark_out=BENCH_ml_hotpath.json
//
// The headline series tracked across PRs: BM_SingleInference,
// BM_CompileTuningTable/threads:1, BM_TrainFramework/threads:1 (shared with
// bench/inference_latency.cpp), plus the ML-layer BM_* kernels below.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "bench_util.hpp"
#include "ml/flat_forest.hpp"
#include "ml/forest.hpp"
#include "ml/tree.hpp"

// ---- allocation counting ----------------------------------------------------
// Counts every operator-new in the process; benchmarks snapshot the counter
// around the timed loop and report allocations per iteration.
//
// GCC's -Wmismatched-new-delete pairs the replaced operator new below with
// the replaced operator delete when inlining both into callers and flags the
// malloc/free it sees inside as mismatched; both sides of the replacement
// use malloc/free, so the pairing is correct.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
// Set by BM_BatchInference when the batched kernel's output diverges from
// the scalar path; main() turns it into a nonzero exit so the CI smoke run
// fails on wrong answers even though google-benchmark treats SkipWithError
// as a reporting detail.
std::atomic<bool> g_batch_mismatch{false};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pml;

ml::Dataset synthetic_dataset(std::size_t n, std::size_t cols, int classes,
                              std::uint64_t seed) {
  ml::Dataset d;
  d.num_classes = classes;
  Rng rng(seed);
  ml::Matrix x(n, cols);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      x.at(r, c) = (c % 3 == 0)
                       ? static_cast<double>(rng.uniform_index(8))
                       : rng.uniform(-2.0, 2.0);
    }
    double s = 0.0;
    for (std::size_t c = 0; c < cols; ++c) s += x.at(r, c) * ((c % 2) ? 1 : -1);
    d.y.push_back(static_cast<int>(
        (static_cast<long long>(s * 3.0) % classes + classes) % classes));
  }
  d.x = x;
  return d;
}

core::PmlFramework& framework() {
  static core::PmlFramework fw = core::PmlFramework::train(
      bench::clusters_except({"Frontera"}), bench::default_train_options());
  return fw;
}

// ---- training kernels -------------------------------------------------------

void BM_TreeFit(benchmark::State& state) {
  const bool reference = state.range(0) != 0;
  const auto d = synthetic_dataset(600, 10, 4, 42);
  ml::TreeParams tp;
  tp.max_features = 3;
  tp.reference_splitter = reference;
  for (auto _ : state) {
    ml::DecisionTree tree(tp);
    Rng rng(7);
    tree.fit(d.x, d.y, d.num_classes, rng);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeFit)->Arg(0)->Arg(1)->ArgName("reference")
    ->Unit(benchmark::kMillisecond);

void BM_ForestFit(benchmark::State& state) {
  const auto d = synthetic_dataset(400, 10, 4, 42);
  ml::RandomForestParams fp;
  fp.n_trees = 20;
  fp.max_features = 3;
  fp.threads = 1;
  for (auto _ : state) {
    ml::RandomForest forest(fp);
    Rng rng(99);
    forest.fit(d, rng);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_ForestFit)->Unit(benchmark::kMillisecond);

// ---- inference kernels ------------------------------------------------------
// The same 100 trees in both layouts: per-node heap Nodes (the pre-PR
// representation, walked via leaf_proba_for) vs the packed FlatForest.

struct TreeFixture {
  std::vector<ml::DecisionTree> trees;
  ml::FlatForest flat;
};

const TreeFixture& tree_fixture() {
  static const TreeFixture fixture = [] {
    const auto d = synthetic_dataset(400, 10, 4, 42);
    ml::TreeParams tp;
    tp.max_features = 3;
    TreeFixture f;
    Rng rng(5);
    for (int t = 0; t < 100; ++t) {
      Rng tree_rng = rng.split();
      f.trees.emplace_back(tp);
      f.trees.back().fit(d.x, d.y, d.num_classes, tree_rng);
      f.trees.back().append_flat(f.flat);
    }
    f.flat.finish(d.num_classes);
    return f;
  }();
  return fixture;
}

void BM_ForestPredictFlat(benchmark::State& state) {
  const auto& f = tree_fixture();
  const auto d = synthetic_dataset(64, 10, 4, 1234);
  std::vector<double> out(4);
  std::size_t r = 0;
  const std::size_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    f.flat.predict_proba_into(d.x.row(r), out);
    benchmark::DoNotOptimize(out.data());
    r = (r + 1) % d.x.rows();
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(g_alloc_count.load() - allocs_before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ForestPredictFlat);

void BM_ForestPredictNodeWalk(benchmark::State& state) {
  const auto& f = tree_fixture();
  const auto d = synthetic_dataset(64, 10, 4, 1234);
  std::vector<double> out(4);
  std::size_t r = 0;
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0);
    for (const auto& tree : f.trees) {
      const auto leaf = tree.leaf_proba_for(d.x.row(r));
      for (std::size_t c = 0; c < out.size(); ++c) out[c] += leaf[c];
    }
    for (auto& v : out) v /= static_cast<double>(f.trees.size());
    benchmark::DoNotOptimize(out.data());
    r = (r + 1) % d.x.rows();
  }
}
BENCHMARK(BM_ForestPredictNodeWalk);

// ---- batched inference kernels ----------------------------------------------
// BM_ScalarLoopInference is the baseline the tentpole gate compares
// against: the same rows pushed one at a time through predict_proba_into.
// BM_BatchInference runs the tree-major blocked kernel and first verifies
// (outside the timed loop) that its output is byte-identical to the scalar
// loop — the bench doubles as a correctness smoke in CI, where timing on
// shared runners is meaningless but divergence is not.

void BM_ScalarLoopInference(benchmark::State& state) {
  const auto& f = tree_fixture();
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto d = synthetic_dataset(rows, 10, 4, 1234);
  ml::Matrix out(rows, 4);
  const std::size_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    for (std::size_t r = 0; r < rows; ++r) {
      f.flat.predict_proba_into(d.x.row(r), out.row(r));
    }
    benchmark::DoNotOptimize(out.row(0).data());
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(rows),
      benchmark::Counter::kIsRate);
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(g_alloc_count.load() - allocs_before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ScalarLoopInference)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(4096)
    ->ArgName("rows");

void BM_BatchInference(benchmark::State& state) {
  const auto& f = tree_fixture();
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto d = synthetic_dataset(rows, 10, 4, 1234);
  ml::Matrix out(rows, 4);
  ml::Matrix ref(rows, 4);
  for (std::size_t r = 0; r < rows; ++r) {
    f.flat.predict_proba_into(d.x.row(r), ref.row(r));
  }
  f.flat.predict_batch(d.x, out);
  for (std::size_t r = 0; r < rows; ++r) {
    if (std::memcmp(out.row(r).data(), ref.row(r).data(),
                    4 * sizeof(double)) != 0) {
      g_batch_mismatch.store(true);
      state.SkipWithError("batched output diverges from the scalar path");
      return;
    }
  }
  const std::size_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    f.flat.predict_batch(d.x, out);
    benchmark::DoNotOptimize(out.row(0).data());
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(rows),
      benchmark::Counter::kIsRate);
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(g_alloc_count.load() - allocs_before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BatchInference)->Arg(64)->Arg(1024)->Arg(4096)->ArgName("rows");

// The compile inner kernel: one tuning-table cell's whole message sweep
// answered by a single select_many (feature assembly + one batched forest
// sweep + per-size ranking), the unit TuningTable::generate now issues.
void BM_BatchCompileSweep(benchmark::State& state) {
  auto& fw = framework();
  const auto& frontera = sim::cluster_by_name("Frontera");
  const auto sizes = sim::power_of_two_sizes(21);
  std::vector<coll::Selection> out(sizes.size());
  const sim::Topology topo{16, 56};
  // Warm the thread_local scratch so the loop measures steady state.
  fw.select_many(coll::Collective::kAlltoall, frontera, topo, sizes, out);
  const std::size_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    fw.select_many(coll::Collective::kAlltoall, frontera, topo, sizes, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(sizes.size()),
      benchmark::Counter::kIsRate);
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(g_alloc_count.load() - allocs_before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BatchCompileSweep);

// ---- framework-level headline series (shared with inference_latency) -------

void BM_SingleInference(benchmark::State& state) {
  auto& fw = framework();
  const auto& frontera = sim::cluster_by_name("Frontera");
  const sim::Topology topo{16, 56};
  std::uint64_t msg = 1;
  // Warm the thread_local scratch so the loop measures steady state.
  benchmark::DoNotOptimize(
      fw.select(coll::Collective::kAlltoall, frontera, topo, msg));
  const std::size_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fw.select(coll::Collective::kAlltoall, frontera, topo, msg));
    msg = msg >= (1u << 20) ? 1 : msg << 1;
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(g_alloc_count.load() - allocs_before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SingleInference);

void BM_CompileTuningTable(benchmark::State& state) {
  auto& fw = framework();
  fw.set_threads(static_cast<int>(state.range(0)));
  const auto& frontera = sim::cluster_by_name("Frontera");
  const std::vector<int> nodes = {1, 2, 4, 8, 16};
  const std::vector<int> ppns = {28, 56};
  const auto sizes = sim::power_of_two_sizes(21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fw.compile_for(frontera, core::CompileOptions::sweep(nodes, ppns, sizes)));
  }
  fw.set_threads(0);
}
BENCHMARK(BM_CompileTuningTable)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

void BM_TrainFramework(benchmark::State& state) {
  auto options = bench::default_train_options();
  options.threads = static_cast<int>(state.range(0));
  const auto clusters = bench::clusters_except({"Frontera"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PmlFramework::train(clusters, options));
  }
}
BENCHMARK(BM_TrainFramework)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("threads")
    ->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (g_batch_mismatch.load()) {
    std::fprintf(stderr,
                 "FAIL: batched inference diverged from the scalar path\n");
    return 1;
  }
  return 0;
}
