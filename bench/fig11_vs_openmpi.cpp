// Reproduces Fig. 11: PML vs the Open MPI 5.1.0a default decision rules at
// PPN=56 (full subscription) on Frontera. The paper reports wins beyond
// 4 KiB: +49.1%/+57.7% for Alltoall and +54.0%/+36.2% for Allgather.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pml;
  std::printf(
      "== Fig. 11: PML vs Open MPI 5.1.0a default, Frontera, PPN=56 ==\n\n");

  const auto& frontera = sim::cluster_by_name("Frontera");
  auto fw = core::PmlFramework::train(bench::clusters_except({"Frontera", "MRI"}),
                                      bench::default_train_options());
  core::OpenMpiDefaultSelector ompi;

  const struct {
    const char* label;
    coll::Collective collective;
    int nodes;
  } panels[] = {
      {"(a) MPI_Allgather, #nodes=8,  PPN=56", coll::Collective::kAllgather, 8},
      {"(b) MPI_Alltoall,  #nodes=8,  PPN=56", coll::Collective::kAlltoall, 8},
      {"(c) MPI_Allgather, #nodes=16, PPN=56", coll::Collective::kAllgather, 16},
      {"(d) MPI_Alltoall,  #nodes=16, PPN=56", coll::Collective::kAlltoall, 16},
  };
  for (const auto& panel : panels) {
    bench::print_comparison(panel.label, frontera,
                            sim::Topology{panel.nodes, 56}, panel.collective,
                            fw, ompi);
  }
  std::printf(
      "(paper: speedups concentrated above 4K; a slight slowdown at 1 B "
      "attributable to network conditions, not algorithm choice)\n");
  return 0;
}
