// Reproduces Fig. 9: cluster-based benchmark on TACC Frontera — the model
// is trained with Frontera (and MRI) excluded and compared against the
// MVAPICH2 2.3.7 default tuning at 16 nodes, PPN 56 and 28.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pml;
  std::printf(
      "== Fig. 9: PML vs MVAPICH2-2.3.7 default on Frontera "
      "(leave-cluster-out) ==\n\n");

  const auto& frontera = sim::cluster_by_name("Frontera");
  auto fw = core::PmlFramework::train(bench::clusters_except({"Frontera", "MRI"}),
                                      bench::default_train_options());
  core::MvapichDefaultSelector mvapich;

  const struct {
    const char* label;
    coll::Collective collective;
    int ppn;
  } panels[] = {
      {"(a) MPI_Allgather, #nodes=16, PPN=56", coll::Collective::kAllgather, 56},
      {"(b) MPI_Alltoall,  #nodes=16, PPN=56", coll::Collective::kAlltoall, 56},
      {"(c) MPI_Allgather, #nodes=16, PPN=28", coll::Collective::kAllgather, 28},
      {"(d) MPI_Alltoall,  #nodes=16, PPN=28", coll::Collective::kAlltoall, 28},
  };
  for (const auto& panel : panels) {
    bench::print_comparison(panel.label, frontera, sim::Topology{16, panel.ppn},
                            panel.collective, fw, mvapich);
  }
  std::printf(
      "(paper: clear wins at specific sizes, e.g. +36.6%%/+36.3%% for "
      "Alltoall at 4K/8K and +60.0%%/+44.3%% for Allgather at 4 B/2K)\n");
  return 0;
}
