// Reproduces Fig. 8: normalized runtime of the proposed framework vs
// random algorithm selection on Frontera, 16 nodes x 56 PPN. The paper
// reports random selection up to 15.48x/9.39x slower for MPI_Allgather and
// 8.32x/3.73x for MPI_Alltoall at large message sizes.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pml;
  std::printf(
      "== Fig. 8: Proposed vs random selection, Frontera 16 nodes x 56 PPN "
      "==\n\n");

  const auto& frontera = sim::cluster_by_name("Frontera");
  const sim::Topology topo{16, 56};
  auto fw = core::PmlFramework::train(bench::clusters_except({"Frontera"}),
                                      bench::default_train_options());

  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    TextTable table({"msg size", "PML choice", "PML time",
                     "random (worst-case)", "random (expected)",
                     "worst/PML", "expected/PML"});
    table.set_title(collective == coll::Collective::kAllgather
                        ? "(a) MPI_Allgather"
                        : "(b) MPI_Alltoall");
    double max_worst = 0.0;
    for (std::uint64_t msg = 1; msg <= (1u << 20); msg <<= 1) {
      const auto times =
          bench::point_times(frontera, topo, collective, msg, 8);
      const coll::Selection choice =
          fw.select(collective, frontera, topo, msg);
      const double t_pml =
          bench::selector_time(fw, frontera, topo, collective, msg, times);
      // Random selection: expectation = mean over valid algorithms;
      // worst case = slowest valid algorithm (a draw the user will hit).
      double sum = 0.0;
      double worst = 0.0;
      int valid = 0;
      for (const double t : times) {
        if (!std::isfinite(t)) continue;
        sum += t;
        worst = std::max(worst, t);
        ++valid;
      }
      const double expected = sum / valid;
      max_worst = std::max(max_worst, worst / t_pml);
      char wr[32], er[32];
      std::snprintf(wr, sizeof wr, "%.2fx", worst / t_pml);
      std::snprintf(er, sizeof er, "%.2fx", expected / t_pml);
      table.add_row({format_bytes(msg), choice.encode(),
                     format_time(t_pml), format_time(worst),
                     format_time(expected), wr, er});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("Peak worst-case slowdown of random selection: %.2fx\n\n",
                max_worst);
  }
  std::printf(
      "(paper: 15.48x/9.39x slowdowns for Allgather, 8.32x/3.73x for "
      "Alltoall at large sizes — random selection is not viable)\n");
  return 0;
}
