// Reproduces the §VII-C aggregate claims:
//  - average speedup of PML over the MVAPICH default on MRI: 6.3%
//    (MPI_Allgather) and 2.5% (MPI_Alltoall); 2.96x / 2.76x over random;
//  - slowdown vs exhaustive offline micro-benchmarking bounded by ~6%
//    (Frontera: 0.6% / 5.6%; MRI: 5.1% / 5.8%).
// Aggregation runs over every tested configuration (all node counts and
// the half/full-subscription PPNs of each cluster's evaluation sweep).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace pml;

struct Aggregate {
  double vs_default = 0.0;
  double vs_random = 0.0;
  double vs_oracle = 0.0;  // PML/oracle ratio (>1 = slowdown)
};

Aggregate evaluate(core::PmlFramework& fw, const sim::ClusterSpec& cluster,
                   const std::vector<int>& nodes, const std::vector<int>& ppns,
                   std::uint64_t max_msg, coll::Collective collective) {
  core::MvapichDefaultSelector mvapich;
  core::RandomSelector random_sel(31);
  core::OracleSelector oracle;

  double log_def = 0.0;
  double log_rand = 0.0;
  double log_oracle = 0.0;
  int n = 0;
  for (const int node_count : nodes) {
    for (const int ppn : ppns) {
      const sim::Topology topo{node_count, ppn};
      for (std::uint64_t msg = 1; msg <= max_msg; msg <<= 1) {
        const auto times =
            bench::point_times(cluster, topo, collective, msg, 19);
        const double t_pml =
            bench::selector_time(fw, cluster, topo, collective, msg, times);
        const double t_def = bench::selector_time(mvapich, cluster, topo,
                                                  collective, msg, times);
        double t_rand = 0.0;
        for (int trial = 0; trial < 8; ++trial) {
          t_rand += bench::selector_time(random_sel, cluster, topo, collective,
                                         msg, times);
        }
        t_rand /= 8.0;
        const double t_oracle = bench::selector_time(oracle, cluster, topo,
                                                     collective, msg, times);
        log_def += std::log(t_def / t_pml);
        log_rand += std::log(t_rand / t_pml);
        log_oracle += std::log(t_pml / t_oracle);
        ++n;
      }
    }
  }
  return {std::exp(log_def / n), std::exp(log_rand / n),
          std::exp(log_oracle / n)};
}

}  // namespace

int main() {
  std::printf(
      "== Aggregate speedups over all tested configurations (paper §VII-C) "
      "==\n\n");

  auto fw = core::PmlFramework::train(bench::clusters_except({"Frontera", "MRI"}),
                                      bench::default_train_options());

  TextTable table({"Cluster", "Collective", "avg speedup vs default",
                   "avg speedup vs random", "slowdown vs micro-benchmark"});
  const struct {
    const char* name;
    std::vector<int> nodes;
    std::vector<int> ppns;
    std::uint64_t max_msg;
  } setups[] = {
      {"Frontera", {1, 2, 4, 8, 16}, {28, 56}, 1u << 20},
      {"MRI", {1, 2, 4, 8}, {64, 128}, 1u << 15},
  };
  for (const auto& setup : setups) {
    const auto& cluster = sim::cluster_by_name(setup.name);
    for (const auto collective :
         {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
      const Aggregate agg = evaluate(fw, cluster, setup.nodes, setup.ppns,
                                     setup.max_msg, collective);
      char rand_s[32];
      std::snprintf(rand_s, sizeof rand_s, "%.2fx", agg.vs_random);
      table.add_row({setup.name,
                     collective == coll::Collective::kAllgather
                         ? "MPI_Allgather"
                         : "MPI_Alltoall",
                     bench::percent_faster(agg.vs_default, 1.0), rand_s,
                     bench::percent_faster(agg.vs_oracle, 1.0)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "(paper: MRI +6.3%% / +2.5%% vs default, 2.96x / 2.76x vs random; "
      "slowdown vs micro-benchmarking bounded by ~6%%)\n");
  return 0;
}
