// Overhead proof for pml::obs (the observability layer's design
// constraint #1): with collection disabled, instrumentation must cost no
// allocations and add < 1% to the hot paths it decorates. main() runs a
// hard gate before the benchmarks — a nonzero exit means the disabled
// path regressed — so the smoke ctest entry catches overhead bit-rot, not
// just build bit-rot. Emits machine-readable JSON via the standard
// google-benchmark flags; the repo's recorded trajectory lives in
// BENCH_obs_overhead.json:
//
//   build/bench/obs_overhead --benchmark_out_format=json
//                            --benchmark_out=BENCH_obs_overhead.json
//
// The headline series: BM_DisabledSpan / BM_DisabledCounterAdd
// (allocs_per_iter == 0, single-digit ns), and BM_TimingOnlyTracingOff
// vs BM_TimingOnlyTracingOn (the end-to-end cost of a fully instrumented
// collective run in both modes).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "coll/runner.hpp"
#include "obs/obs.hpp"
#include "sim/hardware.hpp"

// ---- allocation counting ----------------------------------------------------
// Counts every operator-new in the process (same idiom as
// bench/sweep_hotpath.cpp; see the comment there for the pragma).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pml;

double run_timing_only() {
  static const sim::ClusterSpec& cluster = sim::cluster_by_name("Frontera");
  const sim::Topology topo{4, 8};
  const sim::RunOptions opts{sim::PayloadMode::kTimingOnly, 0.015, 2024};
  return coll::run_collective(cluster, topo, coll::Algorithm::kAgRing, 4096,
                              opts)
      .seconds;
}

// ---- disabled-path micro-costs ----------------------------------------------
// What every instrumented call site pays when tracing is off: one relaxed
// atomic load and a predictable branch. Zero allocations, zero locks.

void BM_DisabledSpan(benchmark::State& state) {
  obs::set_enabled(false);
  const std::size_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    obs::Span span("bench.disabled_span");
    benchmark::DoNotOptimize(&span);
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(g_alloc_count.load() - allocs_before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DisabledSpan);

void BM_DisabledCounterAdd(benchmark::State& state) {
  obs::set_enabled(false);
  static obs::Counter counter("bench.disabled_counter");
  const std::size_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    counter.add(1);
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(g_alloc_count.load() - allocs_before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DisabledCounterAdd);

// ---- enabled-path costs -----------------------------------------------------
// Fixed iteration counts bound the span buffer; the warm-up pass grows it
// to capacity and reset() keeps that capacity, so the timed loop records
// into pre-sized storage (the amortised steady state of a capture run).

constexpr std::size_t kEnabledIters = 1 << 16;

void BM_EnabledSpan(benchmark::State& state) {
  obs::set_enabled(true);
  obs::reset();
  for (std::size_t i = 0; i < kEnabledIters; ++i) {
    obs::Span span("bench.enabled_span");  // warm-up: size the buffer
  }
  obs::reset();
  const std::size_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    obs::Span span("bench.enabled_span");
    benchmark::DoNotOptimize(&span);
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(g_alloc_count.load() - allocs_before),
      benchmark::Counter::kAvgIterations);
  obs::reset();
  obs::set_enabled(false);
}
BENCHMARK(BM_EnabledSpan)->Iterations(kEnabledIters);

// ---- end-to-end: fully instrumented collective run --------------------------
// The same timing-only invocation as bench/sweep_hotpath.cpp, now with the
// engine/runner instrumentation compiled in. Tracing off must still be
// allocation-free after warm-up — the disabled obs entry points may not
// reintroduce heap traffic into the steady state.

void BM_TimingOnlyTracingOff(benchmark::State& state) {
  obs::set_enabled(false);
  benchmark::DoNotOptimize(run_timing_only());  // warm thread-local engine
  const std::size_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_timing_only());
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(g_alloc_count.load() - allocs_before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_TimingOnlyTracingOff)->Unit(benchmark::kMicrosecond);

void BM_TimingOnlyTracingOn(benchmark::State& state) {
  obs::set_enabled(true);
  obs::reset();
  benchmark::DoNotOptimize(run_timing_only());
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_timing_only());
  }
  obs::reset();
  obs::set_enabled(false);
}
BENCHMARK(BM_TimingOnlyTracingOn)->Unit(benchmark::kMicrosecond);

// ---- the gate ---------------------------------------------------------------
// Hard assertions, run before the benchmarks so the smoke test fails fast:
//  1. A disabled-path span + counter op performs zero heap allocations.
//  2. The measured disabled-path cost of every obs touch point in one
//     timing-only collective run is < 1% of the run itself.

int verify_disabled_path() {
  obs::set_enabled(false);
  static obs::Counter counter("bench.gate_counter");  // intern before timing

  // Prime the thread-local engine so the run measurement is steady-state.
  benchmark::DoNotOptimize(run_timing_only());

  constexpr std::size_t kOps = 1'000'000;
  const std::size_t allocs_before = g_alloc_count.load();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kOps; ++i) {
    obs::Span span("bench.gate_span");
    benchmark::DoNotOptimize(&span);
    counter.add(1);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const std::size_t allocs = g_alloc_count.load() - allocs_before;
  const double op_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(kOps);

  // Fastest of a few runs: the cleanest estimate of the work itself.
  double run_ns = 1e18;
  for (int i = 0; i < 64; ++i) {
    const auto r0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(run_timing_only());
    const auto r1 = std::chrono::steady_clock::now();
    run_ns = std::min(run_ns,
                      std::chrono::duration<double, std::nano>(r1 - r0).count());
  }

  // Touch points per timing-only run: ScopedCapture (inert), the runner
  // span, the engine's end-of-run flush (3 counters + 1 gauge + the
  // enabled() check). 8 span+counter pairs is a generous over-count.
  constexpr double kTouchPointsPerRun = 8.0;
  const double overhead_pct = 100.0 * kTouchPointsPerRun * op_ns / run_ns;

  std::printf("obs_overhead gate: disabled span+counter = %.2f ns, "
              "allocations = %zu / %zu ops\n",
              op_ns, allocs, kOps);
  std::printf("obs_overhead gate: timing-only run = %.0f ns, instrumentation "
              "= %.4f%% (budget 1%%)\n",
              run_ns, overhead_pct);

  if (allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: disabled obs path allocated %zu times\n", allocs);
    return 1;
  }
  if (overhead_pct >= 1.0) {
    std::fprintf(stderr,
                 "FAIL: disabled obs overhead %.4f%% exceeds the 1%% budget\n",
                 overhead_pct);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (const int rc = verify_disabled_path(); rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
