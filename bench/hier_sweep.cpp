// Hierarchical-selection hot-path micro-benchmarks, with the same global
// operator-new counter as sweep_hotpath.cpp so the zero-allocation claims
// of the timing-only run_selection path are measured, not asserted.
//
//   build/bench/hier_sweep --benchmark_out_format=json
//                          --benchmark_out=BENCH_hier_sweep.json
//
// Hard gate (SkipWithError => smoke-test failure): run_selection of a flat
// selection with an empty HierarchySpec is the exact flat engine and must
// stay allocation-free in steady state. The leader-schedule and full-space
// sweep entries quantify the hierarchical path's cost next to it.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <string>

#include "coll/runner.hpp"
#include "coll/selection.hpp"
#include "sim/hardware.hpp"

// ---- allocation counting ----------------------------------------------------
// See bench/sweep_hotpath.cpp for the -Wmismatched-new-delete note.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pml;

const sim::ClusterSpec& frontera() { return sim::cluster_by_name("Frontera"); }

sim::RunOptions timing_only() {
  sim::RunOptions opts;
  opts.payload = sim::PayloadMode::kTimingOnly;
  return opts;
}

// ---- flat selection through run_selection (hard gate) -----------------------
// The empty-hierarchy configuration is documented as bit-identical to the
// flat engine; it must also inherit the flat path's allocation-free steady
// state. Several warm-up rounds let the coroutine frame pool settle (frames
// recycle at the *next* reset).

void BM_TimingOnlySelectionFlat(benchmark::State& state) {
  const sim::Topology topo{4, 8};
  sim::RunOptions opts = timing_only();
  opts.hierarchy = sim::HierarchySpec{};  // explicit empty spec
  const coll::Selection s = coll::Selection::flat(coll::Algorithm::kAgRing);
  for (int i = 0; i < 4; ++i) {
    benchmark::DoNotOptimize(
        coll::run_selection(frontera(), topo, s, 4096, opts).seconds);
  }
  const std::size_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll::run_selection(frontera(), topo, s, 4096, opts).seconds);
  }
  const std::size_t allocs = g_alloc_count.load() - allocs_before;
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  if (allocs != 0) {
    state.SkipWithError(
        ("flat run_selection hot path allocated (" + std::to_string(allocs) +
         " over " + std::to_string(state.iterations()) +
         " iters); the empty-hierarchy timing-only path must be free")
            .c_str());
  }
}
BENCHMARK(BM_TimingOnlySelectionFlat)->Unit(benchmark::kMicrosecond);

// ---- leader schedules -------------------------------------------------------
// Leader-based composition under the cluster's hierarchy tier model; the
// allocs_per_iter counter tracks whether the composed schedule reuses the
// flat path's arenas (informational, not gated — composition currently
// stages leader sub-phases).

void bm_leader(benchmark::State& state, const coll::Selection& s,
               std::uint64_t bytes) {
  const sim::Topology topo{4, 16};
  sim::RunOptions opts = timing_only();
  opts.hierarchy = sim::HierarchySpec::from_cluster(frontera());
  for (int i = 0; i < 4; ++i) {
    benchmark::DoNotOptimize(
        coll::run_selection(frontera(), topo, s, bytes, opts).seconds);
  }
  const std::size_t allocs_before = g_alloc_count.load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll::run_selection(frontera(), topo, s, bytes, opts).seconds);
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(g_alloc_count.load() - allocs_before),
      benchmark::Counter::kAvgIterations);
}

void BM_TimingOnlyLeaderAllgather(benchmark::State& state) {
  bm_leader(state,
            coll::Selection::leader(coll::Algorithm::kAgRing,
                                    coll::Algorithm::kBcBinomial),
            65536);
}
BENCHMARK(BM_TimingOnlyLeaderAllgather)->Unit(benchmark::kMicrosecond);

void BM_TimingOnlyLeaderBcast(benchmark::State& state) {
  bm_leader(state,
            coll::Selection::leader(coll::Algorithm::kBcScatterAllgather,
                                    coll::Algorithm::kBcBinomial),
            65536);
}
BENCHMARK(BM_TimingOnlyLeaderBcast)->Unit(benchmark::kMicrosecond);

// ---- full label-space sweep -------------------------------------------------
// One multi-node high-PPN grid cell measured across the entire
// selection_space (the per-cell work of a hierarchy=true dataset build);
// items/sec is selections evaluated per second.

void BM_SelectionSpaceSweep(benchmark::State& state) {
  const auto collective =
      static_cast<coll::Collective>(state.range(0));
  const sim::Topology topo{4, 16};
  sim::RunOptions opts = timing_only();
  opts.hierarchy = sim::HierarchySpec::from_cluster(frontera());
  std::size_t evaluated = 0;
  for (auto _ : state) {
    double sum = 0.0;
    evaluated = 0;
    for (const coll::Selection& s : coll::selection_space(collective)) {
      if (!coll::selection_supports(s, topo)) continue;
      sum += coll::run_selection(frontera(), topo, s, 65536, opts).seconds;
      ++evaluated;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluated) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["selections"] = static_cast<double>(evaluated);
}
BENCHMARK(BM_SelectionSpaceSweep)
    ->Arg(static_cast<int>(coll::Collective::kAllgather))
    ->Arg(static_cast<int>(coll::Collective::kAlltoall))
    ->ArgName("collective")
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
