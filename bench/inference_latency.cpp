// Micro-benchmark (google-benchmark) of the online-inference path: the
// paper claims "less than a second of model inference overhead during the
// compilation time" and constant-time selection at application runtime.
// Measures (a) one model inference, (b) a full tuning-table compile sweep
// at several thread counts, (c) one runtime table lookup, and (d) the
// offline training stage at several thread counts. The threads=1 variants
// are the historical serial paths; threads=0 uses every hardware thread.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/features.hpp"

namespace {

using namespace pml;

core::PmlFramework& framework() {
  static core::PmlFramework fw = core::PmlFramework::train(
      bench::clusters_except({"Frontera"}), bench::default_train_options());
  return fw;
}

void BM_SingleInference(benchmark::State& state) {
  auto& fw = framework();
  const auto& frontera = sim::cluster_by_name("Frontera");
  const sim::Topology topo{16, 56};
  std::uint64_t msg = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fw.select(coll::Collective::kAlltoall, frontera, topo, msg));
    msg = msg >= (1u << 20) ? 1 : msg << 1;
  }
}
BENCHMARK(BM_SingleInference);

void BM_CompileTuningTable(benchmark::State& state) {
  auto& fw = framework();
  fw.set_threads(static_cast<int>(state.range(0)));
  const auto& frontera = sim::cluster_by_name("Frontera");
  const std::vector<int> nodes = {1, 2, 4, 8, 16};
  const std::vector<int> ppns = {28, 56};
  const auto sizes = sim::power_of_two_sizes(21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fw.compile_for(frontera, core::CompileOptions::sweep(nodes, ppns, sizes)));
  }
  fw.set_threads(0);
}
BENCHMARK(BM_CompileTuningTable)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

void BM_TrainFramework(benchmark::State& state) {
  auto options = bench::default_train_options();
  options.threads = static_cast<int>(state.range(0));
  const auto clusters = bench::clusters_except({"Frontera"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PmlFramework::train(clusters, options));
  }
}
BENCHMARK(BM_TrainFramework)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("threads")
    ->Unit(benchmark::kSecond);

void BM_ForestPredictProba(benchmark::State& state) {
  // The forest alone (flattened SoA walk), separating model time from the
  // feature-extraction + ranking work BM_SingleInference also includes.
  auto& fw = framework();
  const auto& forest = fw.model(coll::Collective::kAlltoall);
  const auto& columns = fw.selected_columns(coll::Collective::kAlltoall);
  const auto& frontera = sim::cluster_by_name("Frontera");
  const auto full = core::extract_features(frontera, 16, 56, 1u << 16);
  const auto row = core::project_features(full, columns);
  std::vector<double> proba(static_cast<std::size_t>(forest.num_classes()));
  for (auto _ : state) {
    forest.predict_proba_into(row, proba);
    benchmark::DoNotOptimize(proba.data());
  }
}
BENCHMARK(BM_ForestPredictProba);

void BM_RuntimeTableLookup(benchmark::State& state) {
  auto& fw = framework();
  const auto& frontera = sim::cluster_by_name("Frontera");
  const std::vector<int> nodes = {1, 2, 4, 8, 16};
  const std::vector<int> ppns = {28, 56};
  const auto sizes = sim::power_of_two_sizes(21);
  const core::TuningTable table =
      fw.compile_for(frontera, core::CompileOptions::sweep(nodes, ppns, sizes));
  std::uint64_t msg = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.lookup(coll::Collective::kAllgather, 16, 56, msg));
    msg = msg >= (1u << 20) ? 1 : msg << 1;
  }
}
BENCHMARK(BM_RuntimeTableLookup);

}  // namespace

BENCHMARK_MAIN();
