// Reproduces Table II: test accuracy of RandomForest, GradientBoost, KNN
// and SVM after hyperparameter tuning (AUC-scored cross-validation on the
// training split, as §V-C specifies), evaluated on a random 70/30 split.
#include <cstdio>

#include "bench_util.hpp"
#include "core/dataset_builder.hpp"
#include "ml/factory.hpp"

namespace {

using namespace pml;

struct FamilyGrid {
  const char* family;
  std::vector<Json> candidates;
};

std::vector<FamilyGrid> grids() {
  using ml::param_grid;
  std::vector<FamilyGrid> out;
  out.push_back({"RandomForest",
                 param_grid({{"n_trees", {Json(60), Json(120)}},
                             {"max_features", {Json(4), Json(6), Json(8)}},
                             {"max_depth", {Json(-1), Json(16)}}})});
  out.push_back({"GradientBoost",
                 param_grid({{"n_rounds", {Json(40)}},
                             {"learning_rate", {Json(0.1)}},
                             {"max_depth", {Json(3)}},
                             {"subsample", {Json(0.7), Json(1.0)}}})});
  out.push_back({"KNN", param_grid({{"k", {Json(3), Json(5), Json(9)}},
                                    {"distance_weighted",
                                     {Json(false), Json(true)}}})});
  out.push_back({"SVM", param_grid({{"lambda", {Json(1e-4), Json(1e-3)}},
                                    {"epochs", {Json(20)}}})});
  return out;
}

}  // namespace

int main() {
  std::printf(
      "== Table II: Test accuracy after hyperparameter tuning ==\n\n");

  TextTable table({"Collective", "RF", "GradientBoost", "KNN", "SVM"});
  for (const auto collective :
       {coll::Collective::kAllgather, coll::Collective::kAlltoall}) {
    const auto records =
        core::build_records(std::span(sim::builtin_clusters()), collective,
                            core::BuildOptions{});
    const auto data = core::to_ml_dataset(records, collective);

    Rng split_rng(42);
    const auto split = ml::random_split(data.size(), 0.7, split_rng);
    const auto train = data.subset(split.train);
    const auto test = data.subset(split.test);

    std::vector<std::string> row = {
        collective == coll::Collective::kAllgather ? "MPI_Allgather"
                                                   : "MPI_Alltoall"};
    for (const FamilyGrid& grid : grids()) {
      Rng search_rng(7);
      const auto result =
          ml::grid_search(ml::factory_for(grid.family), grid.candidates,
                          train, /*folds=*/3, search_rng, "auc");
      auto model = ml::make_classifier(grid.family, result.best_params);
      Rng fit_rng(11);
      model->fit(train, fit_rng);
      const double acc = ml::evaluate_accuracy(*model, test);
      row.push_back(format_double(acc * 100.0, 1) + "%");
      std::fprintf(stderr, "  [%s/%s] best CV AUC %.3f with %s\n",
                   row[0].c_str(), grid.family, result.best_score,
                   result.best_params.dump().c_str());
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "(paper: RF 88.8/89.9 > GradientBoost 80.5/78.4 > KNN 64.1/61.9, "
      "SVM 67.3/60.4)\n");
  return 0;
}
